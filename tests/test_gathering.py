"""Tests for the gathering strategies (§3.3, §5.4)."""

import numpy as np
import pytest

from repro.core import (
    gathering_latency,
    naive_strategy,
    optimized_strategy,
    random_strategy,
    recoverable_levels,
)
from repro.transfer import paper_bandwidth_profile


SIZES = [1e9, 5e9, 25e9, 125e9]
MS = [8, 5, 4, 2]
BW = paper_bandwidth_profile(16)


class TestRecoverableLevels:
    def test_no_failures_all_levels(self):
        assert recoverable_levels(MS, [], 16) == [0, 1, 2, 3]

    def test_partial(self):
        # N=3 failures: levels with m >= 3 survive -> [8, 5, 4]
        assert recoverable_levels(MS, [0, 1, 2], 16) == [0, 1, 2]

    def test_only_top(self):
        assert recoverable_levels(MS, list(range(7)), 16) == [0]

    def test_none(self):
        assert recoverable_levels(MS, list(range(9)), 16) == []

    def test_duplicates_ignored(self):
        assert recoverable_levels(MS, [1, 1, 1], 16) == recoverable_levels(
            MS, [1], 16
        )

    def test_bad_ids(self):
        with pytest.raises(ValueError):
            recoverable_levels(MS, [99], 16)


class TestStrategies:
    def test_naive_selects_fastest(self):
        out = naive_strategy(SIZES, MS, BW)
        assert out.x.shape == (16, 4)
        order = np.argsort(BW)[::-1]
        # level 0 needs 16 - 8 = 8 fragments from the 8 fastest
        assert set(np.nonzero(out.x[:, 0])[0]) == set(order[:8].tolist())

    def test_random_counts(self):
        out = random_strategy(SIZES, MS, BW, seed=1)
        for col, j in enumerate(out.levels_included):
            assert out.x[:, col].sum() == 16 - MS[j]

    def test_random_seed_variation(self):
        a = random_strategy(SIZES, MS, BW, seed=1)
        b = random_strategy(SIZES, MS, BW, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_optimized_beats_naive_objective(self):
        naive = naive_strategy(SIZES, MS, BW)
        opt = optimized_strategy(
            SIZES, MS, BW, time_budget=1.0, charged_time=0.0, seed=0
        )
        assert opt.objective_value <= naive.objective_value + 1e-9

    def test_optimized_latency_ordering(self):
        """Fig. 4: Optimized (sans solver time) <= Naive <= typical Random."""
        naive = naive_strategy(SIZES, MS, BW)
        opt = optimized_strategy(
            SIZES, MS, BW, time_budget=1.0, charged_time=0.0, seed=0,
            objective="makespan",
        )
        t_naive = gathering_latency(naive, SIZES, MS, BW)
        t_opt = gathering_latency(opt, SIZES, MS, BW)
        rand_ts = [
            gathering_latency(
                random_strategy(SIZES, MS, BW, seed=s), SIZES, MS, BW
            )
            for s in range(20)
        ]
        assert t_opt <= t_naive + 1e-9
        assert t_opt <= np.mean(rand_ts)

    def test_failures_respected(self):
        failed = [0, 1]
        for strat in (
            random_strategy(SIZES, MS, BW, failed, seed=0),
            naive_strategy(SIZES, MS, BW, failed),
            optimized_strategy(
                SIZES, MS, BW, failed, time_budget=0.2, charged_time=0.0
            ),
        ):
            assert not strat.x[0].any()
            assert not strat.x[1].any()

    def test_unrecoverable_levels_dropped(self):
        failed = [0, 1, 2]  # N=3 > m_4=2, level 4 gone
        out = naive_strategy(SIZES, MS, BW, failed)
        assert out.levels_included == [0, 1, 2]
        assert out.x.shape == (16, 3)

    def test_all_levels_lost_raises(self):
        failed = list(range(9))
        with pytest.raises(ValueError):
            naive_strategy(SIZES, MS, BW, failed)

    def test_unknown_strategy_via_latency_charge(self):
        out = optimized_strategy(
            SIZES, MS, BW, time_budget=0.1, charged_time=60.0
        )
        assert out.solver_time == 60.0
        lat = gathering_latency(out, SIZES, MS, BW)
        assert lat >= 60.0


class TestLatency:
    def test_latency_manual(self):
        """Hand-check the equal-share latency computation."""
        sizes = [100.0]
        ms = [1]
        bw = np.array([10.0, 10.0, 5.0])
        out = naive_strategy(sizes, ms, bw)
        # k = 2 fragments of 50 bytes each from the two fast systems
        lat = gathering_latency(out, sizes, ms, bw)
        assert lat == pytest.approx(5.0)

    def test_contention_penalty(self):
        """Two levels forced through one fast system take longer than the
        single-level time."""
        sizes = [100.0, 100.0]
        ms = [1, 1]
        bw = np.array([100.0, 1.0, 1.0])
        naive = naive_strategy(sizes, ms, bw)
        lat = gathering_latency(naive, sizes, ms, bw)
        # naive sends both levels to systems 0 and 1; system 1 dominates
        assert lat > 50.0
