"""Equivalence and behaviour tests for the planned GF(256) EC kernels.

The planned/chunked kernels in ``repro.ec.kernels`` must be *bit-exact*
with the reference ``matrix.matmul`` path for every code, payload size,
and erasure pattern — fragments written by one implementation must
decode under the other.  These are property-style sweeps over random
``(k, m)`` configurations, degenerate payload sizes, all k-subsets of a
small code, and the thread-parallel paths.
"""

import itertools

import numpy as np
import pytest

from repro.ec import (
    ECConfig,
    ErasureCodec,
    RSCode,
    kernels,
    plan_for,
    planned_matmul,
)
from repro.ec import gf256, matrix
from repro.ec.reed_solomon import pad_to_fragments


def reference_encode(code: RSCode, payload: bytes) -> np.ndarray:
    """The seed encode path: full generator matmul via matrix.matmul."""
    shards = pad_to_fragments(payload, code.k)
    return matrix.matmul(code.generator, shards)


def reference_decode(code: RSCode, fragments: dict) -> np.ndarray:
    """The seed decode path: per-call invert + stack + matmul."""
    idx = sorted(fragments)[: code.k]
    rows = np.stack(
        [np.frombuffer(memoryview(fragments[i]), dtype=np.uint8) for i in idx]
    )
    if idx == list(range(code.k)):
        return rows
    return matrix.solve(code.generator[idx], rows)


# -- planned_matmul vs matrix.matmul ----------------------------------


@pytest.mark.parametrize("shape", [(1, 1, 1), (4, 8, 1000), (3, 5, 0),
                                   (2, 3, 65537), (12, 16, 200001)])
def test_planned_matmul_matches_reference(shape):
    r, k, length = shape
    rng = np.random.default_rng(hash(shape) % (2**32))
    a = rng.integers(0, 256, size=(r, k), dtype=np.uint8)
    # Force the special-cased coefficients onto the hot path too.
    a.flat[:: max(1, a.size // 4)] = 0
    a.flat[1:: max(1, a.size // 3)] = 1
    b = rng.integers(0, 256, size=(k, length), dtype=np.uint8)
    assert np.array_equal(planned_matmul(a, b), matrix.matmul(a, b))


def test_planned_matmul_threaded_identical():
    rng = np.random.default_rng(7)
    a = rng.integers(0, 256, size=(4, 8), dtype=np.uint8)
    b = rng.integers(0, 256, size=(8, 500_001), dtype=np.uint8)
    ref = matrix.matmul(a, b)
    for workers in (2, 4):
        assert np.array_equal(planned_matmul(a, b, workers=workers), ref)


def test_planned_matmul_accepts_row_sequences_and_out():
    rng = np.random.default_rng(8)
    a = rng.integers(0, 256, size=(3, 4), dtype=np.uint8)
    rows = [rng.integers(0, 256, size=999, dtype=np.uint8) for _ in range(4)]
    out = np.empty((3, 999), dtype=np.uint8)
    got = plan_for(a).apply(rows, out=out)
    assert got is out
    assert np.array_equal(out, matrix.matmul(a, np.stack(rows)))


def test_plan_cache_interns_by_coefficients():
    coeffs = np.array([[2, 3], [5, 7]], dtype=np.uint8)
    assert plan_for(coeffs) is plan_for(coeffs.copy())


def test_plan_rejects_bad_inputs():
    with pytest.raises(ValueError):
        plan_for(np.zeros(3, dtype=np.uint8))
    with pytest.raises(ValueError):
        kernels.EncodePlan(np.zeros((2, 2), dtype=np.uint8), chunk=7)
    plan = plan_for(np.ones((2, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        plan.apply([np.zeros(4, dtype=np.uint8)] * 2)  # wrong row count
    with pytest.raises(ValueError):
        plan.apply([np.zeros(4, dtype=np.uint8),
                    np.zeros(4, dtype=np.uint8),
                    np.zeros(5, dtype=np.uint8)])  # unequal rows


def test_pair_mul_table_matches_scalar_products():
    rng = np.random.default_rng(9)
    for c in [0, 1, 2, 137, 255]:
        table = gf256.pair_mul_table(c)
        vals = rng.integers(0, 1 << 16, size=64, dtype=np.uint16)
        lo, hi = vals & 0xFF, vals >> 8
        expected = gf256.mul(np.uint8(c), lo.astype(np.uint8)).astype(
            np.uint16
        ) | (gf256.mul(np.uint8(c), hi.astype(np.uint8)).astype(np.uint16) << 8)
        assert np.array_equal(table[vals], expected)


# -- RSCode: planned encode/decode vs the seed path -------------------


@pytest.mark.parametrize("km", [(2, 1), (3, 2), (5, 3), (8, 4), (11, 6), (16, 8)])
def test_encode_matches_seed_path_across_sizes(km):
    k, m = km
    code = RSCode(k, m)
    rng = np.random.default_rng(k * 100 + m)
    for size in [0, 1, max(k - 1, 1), 3 * (1 << 20) + 13]:
        payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        frags = code.encode(payload)
        ref = reference_encode(code, payload)
        assert np.array_equal(np.stack([np.asarray(f) for f in frags]), ref)
        # Any-k decode (parity-heavy selection) must invert it exactly.
        sel = {i: frags[i] for i in range(m, k + m)}
        assert code.decode(sel) == payload
        assert np.array_equal(code.decode_shards(sel), reference_decode(code, sel))


def test_decode_all_k_subsets_small_code():
    code = RSCode(3, 2)
    rng = np.random.default_rng(5)
    payload = rng.integers(0, 256, size=4097, dtype=np.uint8).tobytes()
    frags = code.encode(payload)
    for subset in itertools.combinations(range(code.n), code.k):
        sel = {i: frags[i] for i in subset}
        assert code.decode(sel) == payload
        assert np.array_equal(
            code.decode_shards(sel), reference_decode(code, sel)
        )


def test_encode_shards_matches_full_generator_matmul():
    code = RSCode(6, 3)
    rng = np.random.default_rng(11)
    shards = rng.integers(0, 256, size=(6, 10_007), dtype=np.uint8)
    assert np.array_equal(
        code.encode_shards(shards), matrix.matmul(code.generator, shards)
    )


def test_reconstruct_fragment_matches_seed_for_every_target():
    code = RSCode(4, 3)
    rng = np.random.default_rng(12)
    payload = rng.integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
    frags = code.encode(payload)
    survivors = {i: frags[i] for i in [1, 3, 5, 6]}
    for target in range(code.n):
        rebuilt = code.reconstruct_fragment(survivors, target)
        assert np.array_equal(rebuilt, np.asarray(frags[target])), target


def test_workers_do_not_change_bytes():
    code = RSCode(8, 4)
    rng = np.random.default_rng(13)
    payload = rng.integers(0, 256, size=2 * (1 << 20) + 1, dtype=np.uint8).tobytes()
    serial = code.encode(payload, workers=1)
    threaded = code.encode(payload, workers=4)
    assert all(np.array_equal(a, b) for a, b in zip(serial, threaded))
    sel = {i: serial[i] for i in range(4, 12)}
    assert code.decode(sel, workers=4) == payload


def test_decode_unequal_lengths_names_offenders():
    code = RSCode(3, 2)
    frags = code.encode(b"some payload that is long enough to split")
    bad = {0: frags[0], 1: np.asarray(frags[1])[:-3], 4: frags[4]}
    with pytest.raises(ValueError, match=r"fragment 1"):
        code.decode_shards(bad)
    # The majority length wins even when the first fragment is the odd one.
    bad2 = {0: np.asarray(frags[0])[:-1], 1: frags[1], 4: frags[4]}
    with pytest.raises(ValueError, match=r"fragment 0"):
        code.decode_shards(bad2)


def test_decode_plan_cache_reused_and_bounded():
    code = RSCode(3, 2)
    payload = bytes(range(256)) * 10
    frags = code.encode(payload)
    sel = {0: frags[0], 2: frags[2], 4: frags[4]}
    code.decode(sel)
    plan = code._decode_plans[(0, 2, 4)]
    code.decode(sel)
    assert code._decode_plans[(0, 2, 4)] is plan


# -- codec-level parallel equivalence ---------------------------------


def test_codec_workers_round_trip():
    codec = ErasureCodec(8, workers=4)
    rng = np.random.default_rng(21)
    payload = rng.integers(0, 256, size=1 << 20, dtype=np.uint8).tobytes()
    enc = codec.encode_level(payload, 3)
    assert codec.decode_level(enc) == payload
    partial = {i: f for i, f in enumerate(enc.fragments) if i not in (0, 3, 6)}
    assert codec.decode_level(config=enc.config, fragments=partial) == payload
    repaired = codec.repair_fragment(enc.config, partial, 0)
    assert np.array_equal(repaired, np.asarray(enc.fragments[0]))


def test_encoded_level_blobs_cached_and_consistent():
    codec = ErasureCodec(6)
    enc = codec.encode_level(b"x" * 1000, 2)
    blobs = enc.fragment_blobs()
    assert blobs is enc.fragment_blobs()
    assert blobs == [np.asarray(f).tobytes() for f in enc.fragments]


def test_random_codes_round_trip_property():
    rng = np.random.default_rng(31)
    for _ in range(10):
        k = int(rng.integers(2, 17))
        m = int(rng.integers(1, 9))
        code = RSCode(k, m)
        size = int(rng.integers(0, 5000))
        payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        frags = code.encode(payload)
        keep = sorted(rng.choice(code.n, size=k, replace=False).tolist())
        sel = {i: frags[i] for i in keep}
        assert code.decode(sel) == payload, (k, m, size, keep)
        assert np.array_equal(
            np.stack([np.asarray(f) for f in frags]),
            reference_encode(code, payload),
        )
