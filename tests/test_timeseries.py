"""Tests for time-evolving datasets and 4-D refactoring."""

import numpy as np
import pytest

from repro.datasets import scale_temperature
from repro.datasets.timeseries import (
    advected_sequence,
    decaying_turbulence,
    snapshot_stack,
)
from repro.refactor import Refactorer, relative_linf_error


class TestAdvection:
    def test_shape_and_dtype(self):
        seq = advected_sequence(5, (9, 9, 9))
        assert seq.shape == (5, 9, 9, 9)
        assert seq.dtype == np.float32

    def test_deterministic(self):
        a = advected_sequence(4, (9, 9), seed=3)
        b = advected_sequence(4, (9, 9), seed=3)
        np.testing.assert_array_equal(a, b)

    def test_temporal_correlation_decays(self):
        seq = advected_sequence(
            12, (17, 17, 17), decorrelation=0.1, velocity=(0, 0, 0), seed=0
        ).astype(np.float64)

        def corr(a, b):
            return float(np.corrcoef(a.reshape(-1), b.reshape(-1))[0, 1])

        c1 = corr(seq[0], seq[1])
        c10 = corr(seq[0], seq[11])
        assert c1 > 0.8
        assert c10 < c1

    def test_pure_advection_preserves_values(self):
        seq = advected_sequence(
            3, (8, 8), velocity=(1.0, 0.0), decorrelation=0.0, seed=1
        )
        np.testing.assert_allclose(
            np.sort(seq[0].reshape(-1)), np.sort(seq[2].reshape(-1)), atol=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            advected_sequence(0, (8, 8))
        with pytest.raises(ValueError):
            advected_sequence(2, (8, 8), decorrelation=1.0)
        with pytest.raises(ValueError):
            advected_sequence(2, (8, 8), velocity=(1.0,))


class TestDecay:
    def test_energy_decays(self):
        seq = decaying_turbulence(8, (17, 17, 17), decay_rate=0.2)
        energy = [float(np.var(seq[t])) for t in range(8)]
        assert all(a >= b for a, b in zip(energy, energy[1:]))

    def test_small_scales_fade_first(self):
        seq = decaying_turbulence(
            6, (33, 33), decay_rate=0.3, small_scale_bias=4.0
        ).astype(np.float64)

        def roughness(f):
            return float(np.mean(np.diff(f, axis=0) ** 2)) / max(
                float(np.var(f)), 1e-30
            )

        assert roughness(seq[5]) < roughness(seq[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            decaying_turbulence(0)
        with pytest.raises(ValueError):
            decaying_turbulence(2, decay_rate=-1)


class TestStack:
    def test_stack(self):
        seq = snapshot_stack(scale_temperature, 3, (9, 9, 9))
        assert seq.shape == (3, 9, 9, 9)
        assert not np.allclose(seq[0], seq[1])
        with pytest.raises(ValueError):
            snapshot_stack(scale_temperature, 0)


class Test4DRefactoring:
    def test_4d_roundtrip(self):
        seq = advected_sequence(9, (17, 17, 17), seed=2)
        r = Refactorer(4, num_planes=24)
        obj = r.refactor(seq)
        assert obj.shape == (9, 17, 17, 17)
        back = r.reconstruct(obj)
        assert relative_linf_error(seq, back) < 1e-5
        assert obj.sizes == sorted(obj.sizes)
        assert obj.errors == sorted(obj.errors, reverse=True)

    def test_temporal_coherence_helps_compression(self):
        """A coherent sequence refactors smaller than independent
        snapshots of the same marginal statistics — the 4-D transform
        exploits the time axis."""
        coherent = advected_sequence(
            8, (17, 17, 17), decorrelation=0.01, seed=0
        )
        independent = snapshot_stack(
            lambda shape, seed: advected_sequence(1, shape, seed=seed)[0],
            8, (17, 17, 17), base_seed=100,
        )
        r = Refactorer(4, num_planes=20)
        cr_coherent = r.refactor(coherent, measure_errors=False).compression_ratio
        cr_independent = r.refactor(
            independent, measure_errors=False
        ).compression_ratio
        assert cr_coherent > cr_independent
