"""Chaos-style integration tests: the whole pipeline under randomised
failure sequences must preserve its core invariants.

Failure setups are declarative :class:`~repro.chaos.FaultPlan` schedules
(applied through a :class:`~repro.chaos.FaultInjector`) instead of
hand-rolled ``cluster.fail`` calls and monkeypatched spies — the same
plans replay from the ``rapids chaos`` CLI.

Invariants checked across every random scenario:

1. restored data error never exceeds the recorded error of the deepest
   level that survived (the paper's error-bounded guarantee);
2. a level is recoverable iff the failure count does not exceed its m_j;
3. restore never touches a failed system (observed via the injector's
   operation trace);
4. outcomes are independent of *which* systems failed, given how many
   (the symmetric-placement property behind Eqs. 4/5).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer, relative_linf_error
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """One prepared object shared by the chaos scenarios (read-only)."""
    tmp = tmp_path_factory.mktemp("chaos")
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, 33)
    data = (
        np.sin(5 * x)[:, None, None]
        * np.cos(3 * x)[None, :, None]
        * np.sin(2 * x)[None, None, :]
        + 0.05 * rng.normal(size=(33, 33, 33))
    ).astype(np.float32)
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp / "meta")
    rapids = RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.3)
    prep = rapids.prepare("chaos:obj", data)
    return rapids, data, prep


def _restore_under(rapids, plan, *, trace=False, strategy="naive", seed=0):
    """Apply ``plan`` through a fresh injector, restore, detach cleanly."""
    injector = FaultInjector(plan, trace=trace)
    rapids.attach_injector(injector)
    injector.apply_outages(rapids.cluster)
    try:
        res = rapids.restore("chaos:obj", strategy=strategy, seed=seed)
    finally:
        rapids.attach_injector(None)
        rapids.cluster.restore_all()
    return res, injector


@given(
    n_failures=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(["naive", "random"]),
)
@settings(max_examples=25, deadline=None)
def test_error_bound_invariant(prepared, n_failures, seed, strategy):
    rapids, data, prep = prepared
    plan = FaultPlan.exact_failures(16, n_failures, seed=seed)
    res, _ = _restore_under(rapids, plan, strategy=strategy, seed=seed)

    ms = prep.ft_config
    expected_levels = sum(1 for m in ms if n_failures <= m)
    assert res.levels_used == expected_levels
    if expected_levels == 0:
        assert res.data is None
        assert res.achieved_error == 1.0
    else:
        err = relative_linf_error(data, res.data)
        # bit-identical to the recorded error for that prefix
        assert err == pytest.approx(
            prep.level_errors[expected_levels - 1], abs=1e-12
        )


@given(seed_a=st.integers(0, 500), seed_b=st.integers(501, 1000))
@settings(max_examples=10, deadline=None)
def test_symmetry_in_failure_identity(prepared, seed_a, seed_b):
    """Two different failure sets of the same size restore the same
    number of levels and the same data."""
    rapids, data, prep = prepared
    results = []
    for seed in (seed_a, seed_b):
        plan = FaultPlan.exact_failures(16, 4, seed=seed)
        res, _ = _restore_under(rapids, plan)
        results.append(res)
    assert results[0].levels_used == results[1].levels_used
    np.testing.assert_array_equal(results[0].data, results[1].data)


def test_fail_restore_fail_cycles(prepared):
    """Alternating failures and recoveries never corrupt state."""
    rapids, data, prep = prepared
    rng = np.random.default_rng(42)
    for _ in range(8):
        k = int(rng.integers(0, 10))
        plan = FaultPlan.exact_failures(16, k, seed=int(rng.integers(1e6)))
        res, _ = _restore_under(rapids, plan)
        if res.data is not None:
            assert np.all(np.isfinite(res.data))
    res = rapids.restore("chaos:obj", strategy="naive")
    assert res.levels_used == 4


def test_restore_never_reads_failed_systems(prepared):
    rapids, _, _ = prepared
    failed = [0, 4, 8]
    _, injector = _restore_under(
        rapids, FaultPlan.outages(failed), trace=True,
        strategy="random", seed=5,
    )
    # every fragment read consults the storage.read seam; failed systems
    # raise UnavailableError before reaching it, so absence from the
    # trace means restore never touched them
    touched = {
        ctx["system_id"]
        for site, ctx in injector.trace
        if site == "storage.read"
    }
    assert touched, "restore should have fetched fragments"
    assert not touched & set(failed)
