"""Property-based chaos testing: the pipeline under generated fault plans.

Hypothesis generates :class:`~repro.chaos.FaultPlan` schedules — outages,
permanent and transient read faults, corruption, decode faults — and
drives prepare → fail → restore, asserting the invariants that define
RAPIDS' availability story:

1. restored data error never exceeds the recorded error of the deepest
   level that survived (the error-bounded guarantee);
2. a level is recoverable iff outages plus *permanent* per-op faults do
   not exceed its m_j — transient faults heal under the retry policy;
3. restore never consults a failed system (checked via the injector's
   operation trace, not monkeypatching);
4. outcomes depend on how many systems failed, not which;
5. with degradation on, restore never raises on injected faults — it
   returns the deepest recoverable prefix plus a structured report;
6. identical ``(seed, plan)`` ⇒ byte-identical outcome, report and
   fault log (the replay contract).

Unit tests for RetryPolicy and FaultPlan serialisation ride along, plus
a CI-seeded round (``RAPIDS_CHAOS_SEED``) and an opt-in soak
(``RAPIDS_CHAOS_SOAK``).
"""

import json
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    DegradedRestore,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer, relative_linf_error
from repro.storage import StorageCluster, exact_k_failures
from repro.transfer import paper_bandwidth_profile

N_SYSTEMS = 16
OBJ = "chaos:prop"


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """One prepared object shared by every scenario (restore is read-only)."""
    tmp = tmp_path_factory.mktemp("chaosprop")
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, 33)
    data = (
        np.sin(5 * x)[:, None, None]
        * np.cos(3 * x)[None, :, None]
        * np.sin(2 * x)[None, None, :]
        + 0.05 * rng.normal(size=(33, 33, 33))
    ).astype(np.float32)
    cluster = StorageCluster(paper_bandwidth_profile(N_SYSTEMS))
    catalog = MetadataCatalog(tmp / "meta")
    rapids = RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.3)
    prep = rapids.prepare(OBJ, data)
    return rapids, data, prep


def _run(rapids, plan, *, trace=False, strategy="naive", seed=0):
    """Attach a fresh injector for ``plan``, restore, detach; the cluster
    and pipeline come back clean no matter what happened."""
    injector = FaultInjector(plan, trace=trace)
    rapids.attach_injector(injector)
    injector.apply_outages(rapids.cluster)
    try:
        res = rapids.restore(OBJ, strategy=strategy, seed=seed)
    finally:
        rapids.attach_injector(None)
        rapids.cluster.restore_all()
    return res, injector


# -- invariant 1 + 2: error bound and m_j recoverability -------------------


@given(
    n_failures=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(["naive", "random"]),
)
@settings(max_examples=25, deadline=None)
def test_error_bound_under_outage_plans(prepared, n_failures, seed, strategy):
    """Pure-outage plans reproduce the analytic m_j math bit-for-bit."""
    rapids, data, prep = prepared
    plan = FaultPlan.exact_failures(N_SYSTEMS, n_failures, seed=seed)
    res, _ = _run(rapids, plan, strategy=strategy, seed=seed)

    ms = prep.ft_config
    expected = sum(1 for m in ms if n_failures <= m)
    assert res.levels_used == expected
    # outages alone are handled by placement, not degradation
    assert res.degraded is None
    if expected == 0:
        assert res.data is None
        assert res.achieved_error == 1.0
    else:
        err = relative_linf_error(data, res.data)
        assert err == pytest.approx(prep.level_errors[expected - 1], abs=1e-12)


@given(
    n_out=st.integers(min_value=0, max_value=6),
    n_bad=st.integers(min_value=0, max_value=4),
    n_flaky=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_mj_recoverability_with_op_faults(prepared, n_out, n_bad, n_flaky, seed):
    """Level j recovers iff |outages ∪ permanently-faulted| <= m_j.

    Permanent read faults act as erasures (spares replace them, up to
    m_j); transient ones (occurrence window closes after 2) heal under
    the pipeline retry policy and cost nothing.
    """
    rapids, data, prep = prepared
    ids = [int(i) for i in exact_k_failures(N_SYSTEMS, n_out + n_bad + n_flaky, seed=seed)]
    out_ids = ids[:n_out]
    bad_ids = ids[n_out:n_out + n_bad]
    flaky_ids = ids[n_out + n_bad:]
    extra = tuple(
        FaultSpec(site="storage.read", effect="error", where={"system_id": i})
        for i in bad_ids
    ) + tuple(
        FaultSpec(site="storage.read", effect="error", where={"system_id": i}, stop=2)
        for i in flaky_ids
    )
    plan = FaultPlan.outages(out_ids, seed=seed, extra=extra)
    res, _ = _run(rapids, plan)

    ms = prep.ft_config
    expected = sum(1 for m in ms if n_out + n_bad <= m)
    assert res.levels_used == expected
    if res.data is not None:
        err = relative_linf_error(data, res.data)
        assert err == pytest.approx(prep.level_errors[expected - 1], abs=1e-12)
    # a shortfall caused by op faults (not outages) must be reported
    outage_only = sum(1 for m in ms if n_out <= m)
    if expected < outage_only:
        assert res.degraded is not None
        assert res.degraded.recovered_levels == list(range(expected))


# -- invariant 3: restore never consults a failed system --------------------


def test_restore_never_touches_failed_systems(prepared):
    rapids, _, _ = prepared
    failed = [0, 4, 8]
    _, injector = _run(rapids, FaultPlan.outages(failed), trace=True,
                       strategy="random", seed=5)
    touched = {
        ctx["system_id"]
        for site, ctx in injector.trace
        if site == "storage.read"
    }
    # failed systems raise UnavailableError before the injector seam, so
    # their absence from the trace is exactly the property we want
    assert touched, "restore should have consulted the read seam"
    assert not touched & set(failed)


# -- invariant 4: symmetry in failure identity ------------------------------


@given(seed_a=st.integers(0, 500), seed_b=st.integers(501, 1000))
@settings(max_examples=10, deadline=None)
def test_symmetry_in_failure_identity(prepared, seed_a, seed_b):
    rapids, _, _ = prepared
    results = []
    for seed in (seed_a, seed_b):
        plan = FaultPlan.exact_failures(N_SYSTEMS, 4, seed=seed)
        res, _ = _run(rapids, plan)
        results.append(res)
    assert results[0].levels_used == results[1].levels_used
    np.testing.assert_array_equal(results[0].data, results[1].data)


# -- invariant 5: degraded restore never raises -----------------------------


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    intensity=st.floats(min_value=0.05, max_value=0.6),
)
@settings(max_examples=25, deadline=None)
def test_degraded_restore_never_raises(prepared, seed, intensity):
    """Whatever the generated plan injects, restore(degrade=True) returns
    a report — the deepest recoverable prefix, never an exception."""
    rapids, data, prep = prepared
    plan = FaultPlan.random(seed, N_SYSTEMS, intensity=intensity,
                            metadata_faults=True)
    res, _ = _run(rapids, plan)

    assert 0 <= res.levels_used <= len(prep.ft_config)
    if res.data is None:
        assert res.levels_used == 0
        assert res.achieved_error == 1.0
    else:
        err = relative_linf_error(data, res.data)
        assert err == pytest.approx(
            prep.level_errors[res.levels_used - 1], abs=1e-12
        )
    if res.degraded is not None:
        d = res.degraded
        assert isinstance(d, DegradedRestore)
        assert d.failures, "a degraded report must carry its failures"
        assert d.recovered_levels == d.requested_levels[: len(d.recovered_levels)]
        assert set(d.abandoned_levels).isdisjoint(d.recovered_levels)
        # the report round-trips to JSON (it lands in bug reports)
        json.dumps(d.to_dict())


# -- invariant 6: byte-identical replay -------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    intensity=st.floats(min_value=0.05, max_value=0.6),
)
@settings(max_examples=15, deadline=None)
def test_replay_is_byte_identical(prepared, seed, intensity):
    """Same (seed, plan) twice ⇒ same levels, same bytes, same fault log."""
    rapids, _, _ = prepared
    plan = FaultPlan.random(seed, N_SYSTEMS, intensity=intensity)
    res_a, inj_a = _run(rapids, plan)
    res_b, inj_b = _run(rapids, plan)

    assert res_a.levels_used == res_b.levels_used
    if res_a.data is None:
        assert res_b.data is None
    else:
        assert res_a.data.tobytes() == res_b.data.tobytes()
    da = res_a.degraded.to_dict() if res_a.degraded else None
    db = res_b.degraded.to_dict() if res_b.degraded else None
    assert da == db
    assert inj_a.log == inj_b.log


def test_plan_json_round_trip_replays(prepared, tmp_path):
    """A plan that went through disk injects the identical fault log."""
    rapids, _, _ = prepared
    plan = FaultPlan.random(1234, N_SYSTEMS, intensity=0.4)
    path = plan.save(tmp_path / "plan.json")
    reloaded = FaultPlan.load(path)
    assert reloaded == plan
    res_a, inj_a = _run(rapids, plan)
    res_b, inj_b = _run(rapids, reloaded)
    assert inj_a.log == inj_b.log
    assert res_a.levels_used == res_b.levels_used


# -- CI-seeded round and opt-in soak ---------------------------------------


def test_seeded_chaos_round():
    """The CLI's chaos round under the CI seed matrix: the chaos job runs
    this with RAPIDS_CHAOS_SEED ∈ {7, 1234, 20260806}; locally it
    defaults to 7.  Replay must be exact at the CLI-outcome level too."""
    from repro.cli import _chaos_round

    seed = int(os.environ.get("RAPIDS_CHAOS_SEED", "7"))
    plan = FaultPlan.random(seed, N_SYSTEMS, intensity=0.3)
    a = _chaos_round(plan, size=33, systems=N_SYSTEMS, strategy="naive")
    b = _chaos_round(plan, size=33, systems=N_SYSTEMS, strategy="naive")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


@pytest.mark.skipif(
    not os.environ.get("RAPIDS_CHAOS_SOAK"),
    reason="soak runs only when RAPIDS_CHAOS_SOAK is set (make chaos-soak)",
)
def test_chaos_soak(prepared):
    """Time-boxed randomised soak: many plans, every invariant, no raise."""
    rapids, data, prep = prepared
    budget = float(os.environ.get("RAPIDS_CHAOS_SOAK_SECONDS", "60"))
    deadline = time.monotonic() + budget
    seed = int(os.environ.get("RAPIDS_CHAOS_SEED", "7"))
    rounds = 0
    while time.monotonic() < deadline:
        plan = FaultPlan.random(seed + rounds, N_SYSTEMS,
                                intensity=0.05 + (rounds % 12) / 20,
                                metadata_faults=True)
        res, _ = _run(rapids, plan)
        if res.data is not None:
            err = relative_linf_error(data, res.data)
            assert err <= prep.level_errors[res.levels_used - 1] + 1e-12
        rounds += 1
    assert rounds > 0


# -- unit coverage: RetryPolicy --------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(max_attempts=None)
        RetryPolicy(max_attempts=None, deadline=10.0)  # ok
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_schedule(self):
        p = RetryPolicy(base=0.5, factor=2.0, max_delay=3.0)
        assert [p.delay(i) for i in range(4)] == [0.5, 1.0, 2.0, 3.0]

    def test_jitter_is_deterministic_given_draw(self):
        p = RetryPolicy(base=1.0, jitter=0.5)
        assert p.delay(0, u=0.0) == 1.0
        assert p.delay(0, u=1.0) == pytest.approx(0.5)

    def test_call_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        out = RetryPolicy(max_attempts=3, base=0.0).call(flaky)
        assert out.ok and out.value == "ok"
        assert out.attempts == 3 and out.retried

    def test_call_never_raises_on_exhaustion(self):
        out = RetryPolicy(max_attempts=2, base=0.0).call(
            lambda: (_ for _ in ()).throw(RuntimeError("perm"))
        )
        assert not out.ok
        assert isinstance(out.error, RuntimeError)
        assert out.attempts == 2
        assert len(out.errors) == 2

    def test_call_propagates_unlisted_exceptions(self):
        def boom():
            raise KeyError("not retryable here")

        with pytest.raises(KeyError):
            RetryPolicy(base=0.0).call(boom, retry_on=(RuntimeError,))

    def test_deadline_stops_unbounded_retries(self):
        clock = {"t": 0.0}

        def tick():
            return clock["t"]

        def sleep(d):
            clock["t"] += d

        def failing():
            clock["t"] += 1.0
            raise RuntimeError("down")

        p = RetryPolicy(max_attempts=None, base=1.0, factor=1.0, deadline=10.0)
        out = p.call(failing, sleep=sleep, clock=tick)
        assert not out.ok
        assert out.elapsed <= 10.0 + 2.0
        assert out.attempts < 100  # bounded by the deadline, not luck


# -- unit coverage: FaultSpec / FaultPlan ----------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="nope.read")
        with pytest.raises(ValueError, match="effect"):
            FaultSpec(site="storage.read", effect="explode")
        with pytest.raises(ValueError, match="not valid at site"):
            FaultSpec(site="ec.decode", effect="torn")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="storage.read", probability=1.5)
        with pytest.raises(ValueError, match="stop"):
            FaultSpec(site="storage.read", start=3, stop=3)
        with pytest.raises(ValueError, match="scope"):
            FaultSpec(site="storage.read", scope="galaxy")

    def test_json_round_trip(self):
        plan = FaultPlan.random(99, N_SYSTEMS, intensity=0.5,
                                metadata_faults=True)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_with_seed_changes_draws_only(self):
        plan = FaultPlan.random(3, N_SYSTEMS, intensity=0.3)
        reseeded = plan.with_seed(4)
        assert reseeded.specs == plan.specs
        assert reseeded.seed == 4

    def test_outage_ids_resolve_deterministically(self):
        plan = FaultPlan.outages([3, 1, 1, 7])
        assert plan.outage_ids() == [1, 3, 7]
        probabilistic = FaultPlan(seed=5, specs=(
            FaultSpec(site="system.outage", effect="outage",
                      probability=0.5, where={"system_id": 2}),
        ))
        assert probabilistic.outage_ids() == probabilistic.outage_ids()

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan.exact_failures(N_SYSTEMS, 3, seed=1, extra=(
            FaultSpec(site="ec.decode", effect="error", probability=0.5),
        ))
        text = plan.describe()
        assert "system.outage" in text and "ec.decode" in text

    def test_injected_fault_is_replayable_metadata(self, prepared):
        """An InjectedFault carries enough context to reproduce itself."""
        rapids, _, _ = prepared
        plan = FaultPlan(specs=(
            FaultSpec(site="pipeline.restore", effect="error"),
        ))
        injector = FaultInjector(plan)
        rapids.attach_injector(injector)
        try:
            with pytest.raises(InjectedFault) as exc_info:
                rapids.restore(OBJ, strategy="naive", degrade=False)
        finally:
            rapids.attach_injector(None)
        fault = exc_info.value
        assert fault.site == "pipeline.restore"
        assert fault.effect == "error"
        assert fault.spec_index == 0
