"""Tests for striped erasure coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.striping import StripedCode


class TestStripedRoundTrip:
    def test_multi_stripe_roundtrip(self):
        code = StripedCode(4, 2, stripe_bytes=100)
        payload = np.random.default_rng(0).bytes(950)  # 10 stripes
        enc = code.encode(payload)
        assert enc.num_stripes == 10
        assert code.decode(enc, dict(enumerate(enc.fragments))) == payload

    def test_single_stripe(self):
        code = StripedCode(3, 1, stripe_bytes=1 << 20)
        payload = b"small payload"
        enc = code.encode(payload)
        assert enc.num_stripes == 1
        assert code.decode(enc, dict(enumerate(enc.fragments))) == payload

    def test_empty_payload(self):
        code = StripedCode(2, 1)
        enc = code.encode(b"")
        assert code.decode(enc, dict(enumerate(enc.fragments))) == b""

    def test_loss_tolerance(self):
        code = StripedCode(4, 2, stripe_bytes=64)
        payload = bytes(range(256)) * 3
        enc = code.encode(payload)
        survivors = {i: enc.fragments[i] for i in (0, 2, 4, 5)}
        assert code.decode(enc, survivors) == payload

    def test_insufficient_fragments(self):
        code = StripedCode(4, 2, stripe_bytes=64)
        enc = code.encode(b"x" * 300)
        with pytest.raises(ValueError):
            code.decode(enc, {0: enc.fragments[0]})

    def test_parallel_encode_matches_serial(self):
        code = StripedCode(4, 2, stripe_bytes=128)
        payload = np.random.default_rng(1).bytes(1024)
        serial = code.encode(payload, processes=1)
        parallel = code.encode(payload, processes=2)
        for a, b in zip(serial.fragments, parallel.fragments):
            assert np.array_equal(a, b)

    def test_stripe_bytes_validation(self):
        with pytest.raises(ValueError):
            StripedCode(8, 2, stripe_bytes=4)

    def test_fragments_concatenate_per_stripe(self):
        """A striped fragment equals the concatenation of the per-stripe
        fragments of a plain code run stripe by stripe."""
        from repro.ec import RSCode

        code = StripedCode(3, 2, stripe_bytes=50)
        payload = bytes(range(130))
        enc = code.encode(payload)
        plain = RSCode(3, 2)
        expected = [
            np.concatenate([
                np.frombuffer(plain.encode(payload[off:off + 50])[i].tobytes(), np.uint8)
                for off in range(0, 130, 50)
            ])
            for i in range(5)
        ]
        for a, b in zip(enc.fragments, expected):
            assert np.array_equal(a, b)


class TestRepair:
    def test_repair_striped_fragment(self):
        code = StripedCode(4, 3, stripe_bytes=40)
        payload = np.random.default_rng(2).bytes(333)
        enc = code.encode(payload)
        avail = {i: enc.fragments[i] for i in (0, 1, 3, 5)}
        for target in range(7):
            rebuilt = code.repair_fragment(enc, avail, target)
            assert np.array_equal(rebuilt, enc.fragments[target])


@given(
    st.binary(min_size=0, max_size=700),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=16, max_value=200),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_striped_mds_property(payload, k, m, stripe, seed):
    code = StripedCode(k, m, stripe_bytes=max(stripe, k))
    enc = code.encode(payload)
    rng = np.random.default_rng(seed)
    keep = sorted(rng.choice(k + m, size=k, replace=False).tolist())
    assert code.decode(enc, {i: enc.fragments[i] for i in keep}) == payload
