"""Tests for the Cauchy-matrix code family, cross-checked against the
Vandermonde-derived systematic code."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RSCode, matrix
from repro.ec.cauchy import CauchyRSCode, cauchy_matrix


class TestCauchyMatrix:
    def test_every_square_submatrix_invertible(self):
        xs = np.arange(4, 8, dtype=np.uint8)
        ys = np.arange(0, 4, dtype=np.uint8)
        c = cauchy_matrix(xs, ys)
        for size in (1, 2, 3, 4):
            for rows in itertools.combinations(range(4), size):
                for cols in itertools.combinations(range(4), size):
                    matrix.invert(c[np.ix_(rows, cols)])  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            cauchy_matrix(np.array([1, 1], np.uint8), np.array([2, 3], np.uint8))
        with pytest.raises(ValueError):
            cauchy_matrix(np.array([1, 2], np.uint8), np.array([2, 3], np.uint8))


class TestCauchyCode:
    def test_validation(self):
        with pytest.raises(ValueError):
            CauchyRSCode(0, 1)
        with pytest.raises(ValueError):
            CauchyRSCode(1, -1)
        with pytest.raises(ValueError):
            CauchyRSCode(200, 100)

    def test_systematic(self):
        code = CauchyRSCode(4, 2)
        data = bytes(range(64))
        frags = code.encode(data)
        from repro.ec.reed_solomon import pad_to_fragments

        shards = pad_to_fragments(data, 4)
        for i in range(4):
            assert np.array_equal(frags[i], shards[i])

    def test_all_decode_combinations(self):
        code = CauchyRSCode(3, 3)
        data = np.random.default_rng(0).bytes(150)
        frags = code.encode(data)
        for subset in itertools.combinations(range(6), 3):
            assert code.decode({i: frags[i] for i in subset}) == data

    def test_zero_parity(self):
        code = CauchyRSCode(3, 0)
        data = b"x" * 31
        frags = code.encode(data)
        assert code.decode(dict(enumerate(frags))) == data

    def test_insufficient_fragments(self):
        code = CauchyRSCode(4, 2)
        frags = code.encode(b"data")
        with pytest.raises(ValueError):
            code.decode({0: frags[0]})

    def test_reconstruct(self):
        code = CauchyRSCode(4, 3)
        data = bytes(range(101))
        frags = code.encode(data)
        avail = {i: frags[i] for i in (1, 3, 4, 6)}
        for target in range(7):
            assert np.array_equal(
                code.reconstruct_fragment(avail, target), frags[target]
            )
        with pytest.raises(ValueError):
            code.reconstruct_fragment(avail, 9)

    def test_generator_readonly(self):
        code = CauchyRSCode(2, 2)
        with pytest.raises(ValueError):
            code.generator[0, 0] = 5

    @given(
        st.binary(min_size=1, max_size=200),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_mds_property(self, data, k, m, seed):
        code = CauchyRSCode(k, m)
        frags = code.encode(data)
        rng = np.random.default_rng(seed)
        keep = sorted(rng.choice(k + m, size=k, replace=False).tolist())
        assert code.decode({i: frags[i] for i in keep}) == data


class TestFamilyCrossChecks:
    @pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (5, 3), (12, 4)])
    def test_families_interoperate_on_data_fragments(self, k, m):
        """Both codes are systematic, so their data fragments agree; each
        family decodes from its own parity."""
        data = np.random.default_rng(1).bytes(500)
        vand = RSCode(k, m)
        cauchy = CauchyRSCode(k, m)
        fv = vand.encode(data)
        fc = cauchy.encode(data)
        for i in range(k):
            assert np.array_equal(fv[i], fc[i])
        # mixed decode using data fragments only works for either family
        subset = {i: fv[i] for i in range(k)}
        assert vand.decode(subset) == cauchy.decode(subset) == data

    def test_parity_fragments_differ(self):
        """The families are distinct constructions: parity bytes differ."""
        data = b"q" * 100
        fv = RSCode(4, 2).encode(data)
        fc = CauchyRSCode(4, 2).encode(data)
        assert not all(np.array_equal(fv[4 + i], fc[4 + i]) for i in range(2))

    def test_same_fragment_sizes(self):
        data = b"z" * 123
        fv = RSCode(5, 2).encode(data)
        fc = CauchyRSCode(5, 2).encode(data)
        assert [f.nbytes for f in fv] == [f.nbytes for f in fc]
