"""Tests for the coarsening grid hierarchy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.refactor.grid import (
    MIN_AXIS,
    coarse_indices,
    detail_indices,
    plan_levels,
)


def test_coarse_indices_odd():
    assert coarse_indices(9).tolist() == [0, 2, 4, 6, 8]


def test_coarse_indices_even():
    assert coarse_indices(6).tolist() == [0, 2, 4, 5]


def test_coarse_indices_minimal():
    assert coarse_indices(2).tolist() == [0, 1]
    assert coarse_indices(3).tolist() == [0, 2]


def test_coarse_indices_too_short():
    with pytest.raises(ValueError):
        coarse_indices(1)


@given(st.integers(min_value=2, max_value=500))
def test_partition_property(n):
    """Coarse and detail indices partition the axis."""
    ci = coarse_indices(n)
    di = detail_indices(n)
    assert ci[0] == 0 and ci[-1] == n - 1
    merged = np.sort(np.concatenate([ci, di]))
    assert merged.tolist() == list(range(n))


@given(st.integers(min_value=2, max_value=500))
def test_detail_nodes_have_coarse_neighbours(n):
    ci = set(coarse_indices(n).tolist())
    for d in detail_indices(n):
        assert d - 1 in ci and d + 1 in ci


def test_plan_levels_3d():
    plans = plan_levels((17, 17, 17), 3)
    assert len(plans) == 3
    assert plans[0].fine_shape == (17, 17, 17)
    assert plans[0].coarse_shape == (9, 9, 9)
    assert plans[1].coarse_shape == (5, 5, 5)
    assert plans[2].coarse_shape == (3, 3, 3)


def test_plan_levels_stops_at_min_axis():
    plans = plan_levels((5, 5), 10)
    # 5 -> 3 -> 2; 2 < MIN_AXIS stops further coarsening.
    assert plans[-1].coarse_shape == (2, 2)
    assert len(plans) == 2


def test_plan_levels_mixed_axes():
    plans = plan_levels((33, 4), 2)
    assert plans[0].coarse_shape == (17, 3)
    assert plans[1].coarse_shape == (9, 2)
    assert plans[0].coarsened_axes == (0, 1)
    # second step still coarsens both (3 >= MIN_AXIS)
    assert plans[1].coarsened_axes == (0, 1)


def test_plan_levels_short_axis_passthrough():
    plans = plan_levels((9, 2), 2)
    assert all(p.coarsened_axes == (0,) for p in plans)
    assert plans[0].coarse_shape == (5, 2)


def test_plan_levels_rejects_tiny():
    with pytest.raises(ValueError):
        plan_levels((1, 8), 2)
    with pytest.raises(ValueError):
        plan_levels((2, 2), 2)  # nothing coarsenable


def test_detail_count():
    plans = plan_levels((9, 9), 1)
    assert plans[0].detail_count == 81 - 25
