"""Fragment-integrity tests: bit rot detected via checksums is handled
as an erasure (substitute a clean fragment), never as silent corruption."""

import numpy as np
import pytest

from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import relative_linf_error
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


def smooth(n=33, seed=0):
    x = np.linspace(0, 1, n)
    rng = np.random.default_rng(seed)
    ph = rng.uniform(0, 2 * np.pi, 3)
    return (
        np.sin(4 * x + ph[0])[:, None, None]
        * np.cos(3 * x + ph[1])[None, :, None]
        * np.sin(2 * x + ph[2])[None, None, :]
    ).astype(np.float32)


@pytest.fixture
def rapids(tmp_path):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp_path / "meta")
    system = RAPIDS(cluster, catalog, omega=0.3)
    yield system
    catalog.close()


def _corrupt(cluster, name, level, index):
    # Poke the resident fragment directly: get() now verifies the store
    # CRC, and at-rest rot does not go through the read path.
    sf = cluster[index]._store[(name, level, index)]
    payload = bytearray(sf.payload)
    payload[len(payload) // 2] ^= 0xFF
    sf.payload = bytes(payload)


class TestChecksumsRecorded:
    def test_prepare_records_checksums(self, rapids):
        rapids.prepare("obj", smooth())
        rec = rapids.catalog.get_fragment("obj", 0, 0)
        assert rec.checksum != 0
        from repro.formats import verify

        sf = rapids.cluster[0].get("obj", 0, 0)
        assert verify(sf.payload, rec.checksum)


class TestCorruptionHandling:
    def test_single_corruption_recovered_exactly(self, rapids):
        data = smooth()
        rapids.prepare("obj", data)
        _corrupt(rapids.cluster, "obj", 1, 3)
        res = rapids.restore("obj", strategy="naive")
        assert res.levels_used == 4
        err = relative_linf_error(data, res.data)
        rec = rapids.catalog.get_object("obj")
        assert err <= rec.level_errors[-1] + 1e-12

    def test_multiple_corruptions_within_parity(self, rapids):
        data = smooth()
        prep = rapids.prepare("obj", data)
        m_top = prep.ft_config[0]
        for idx in range(min(3, m_top)):
            _corrupt(rapids.cluster, "obj", 0, idx)
        res = rapids.restore("obj", strategy="naive")
        err = relative_linf_error(data, res.data)
        assert err <= prep.level_errors[res.levels_used - 1] + 1e-12

    def test_corruption_plus_failures(self, rapids):
        data = smooth()
        prep = rapids.prepare("obj", data)
        _corrupt(rapids.cluster, "obj", 0, 15)
        rapids.cluster.fail([0, 1])
        res = rapids.restore("obj", strategy="naive")
        assert res.levels_used >= 1
        assert np.all(np.isfinite(res.data))

    def test_too_much_corruption_degrades_or_raises(self, rapids):
        data = smooth()
        prep = rapids.prepare("obj", data)
        # corrupt every fragment of the bottom level
        for idx in range(16):
            _corrupt(rapids.cluster, "obj", 3, idx)
        # strict mode refuses outright
        with pytest.raises(RuntimeError, match="lost"):
            rapids.restore("obj", strategy="naive", degrade=False)
        # the default degrades to the clean three-level prefix and says so
        res = rapids.restore("obj", strategy="naive")
        assert res.levels_used == 3
        assert res.degraded is not None
        assert res.degraded.abandoned_levels == [3]
        err = relative_linf_error(data, res.data)
        assert err <= prep.level_errors[2] + 1e-12

    def test_corruption_never_silently_propagates(self, rapids):
        """Whatever the corruption pattern, restored data matches the
        recorded error: corruption can reduce availability, not
        accuracy."""
        data = smooth()
        prep = rapids.prepare("obj", data)
        rng = np.random.default_rng(1)
        for _ in range(6):
            level = int(rng.integers(0, 4))
            idx = int(rng.integers(0, 16))
            _corrupt(rapids.cluster, "obj", level, idx)
        try:
            res = rapids.restore("obj", strategy="naive")
        except RuntimeError:
            return  # refusing is acceptable; lying is not
        err = relative_linf_error(data, res.data)
        assert err <= prep.level_errors[res.levels_used - 1] + 1e-12
