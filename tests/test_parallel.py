"""Tests for block partitioning, the parallel executor, scaling model,
and the GPU batched backend."""

import numpy as np
import pytest

from repro.parallel import (
    ALPINE_FS,
    K80_MODEL,
    ClusterScalingModel,
    GPUDeviceModel,
    OperationRates,
    ParallelRefactorer,
    batched_decompose,
    batched_recompose,
    block_shape_for,
    join_blocks,
    split_blocks,
)
from repro.refactor import Refactorer, relative_linf_error, transform


def field(n0=32, n=17, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, n0)[:, None, None]
    y = np.linspace(0, 1, n)[None, :, None]
    z = np.linspace(0, 1, n)[None, None, :]
    return (np.sin(3 * x) * np.cos(2 * y) * np.sin(4 * z)).astype(np.float32)


class TestPartition:
    def test_split_join_roundtrip(self):
        data = field()
        for nb in (1, 2, 3, 5, 8):
            blocks = split_blocks(data, nb)
            np.testing.assert_array_equal(join_blocks(blocks), data)

    def test_split_clamps(self):
        data = field(n0=6)
        blocks = split_blocks(data, 100)
        assert len(blocks) == 3  # 6 // 2

    def test_block_shape_for(self):
        assert block_shape_for((32, 17, 17), 4) == (8, 17, 17)
        assert block_shape_for((6, 5), 100) == (2, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_blocks(field(), 0)
        with pytest.raises(ValueError):
            join_blocks([])


class TestParallelRefactorer:
    def test_serial_roundtrip(self):
        data = field()
        pr = ParallelRefactorer(processes=1, num_components=3)
        res = pr.refactor(data)
        assert res.num_blocks == 1
        back = pr.reconstruct(res.objects)
        assert back.data.shape == data.shape
        assert relative_linf_error(data, back.data) < 1e-4

    def test_two_process_roundtrip(self):
        data = field()
        pr = ParallelRefactorer(processes=2, num_components=3)
        res = pr.refactor(data)
        assert res.num_blocks == 2
        back = pr.reconstruct(res.objects)
        assert relative_linf_error(data, back.data) < 1e-4

    def test_partial_reconstruct(self):
        data = field()
        pr = ParallelRefactorer(processes=1, num_components=3)
        res = pr.refactor(data)
        full = pr.reconstruct(res.objects, upto=3).data
        partial = pr.reconstruct(res.objects, upto=1).data
        assert relative_linf_error(data, partial) > relative_linf_error(data, full)

    def test_throughput_positive(self):
        res = ParallelRefactorer(processes=1, num_components=2).refactor(field())
        assert res.throughput > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelRefactorer(processes=0)
        with pytest.raises(ValueError):
            ParallelRefactorer(processes=1).reconstruct([])

    def test_region_reconstruction_matches_full(self):
        data = field()
        pr = ParallelRefactorer(processes=1, num_components=3)
        res = pr.refactor(data, blocks_per_process=4)
        full = pr.reconstruct(res.objects).data
        region = pr.reconstruct_region(res.objects, 10, 22)
        np.testing.assert_array_equal(region.data, full[10:22])

    def test_region_touches_fewer_blocks(self):
        data = field()
        pr = ParallelRefactorer(processes=1, num_components=3)
        res = pr.refactor(data, blocks_per_process=8)
        region = pr.reconstruct_region(res.objects, 0, 4)
        assert region.extra["blocks_touched"] < region.extra["blocks_total"]

    def test_region_validation(self):
        data = field()
        pr = ParallelRefactorer(processes=1, num_components=2)
        res = pr.refactor(data, blocks_per_process=2)
        with pytest.raises(ValueError):
            pr.reconstruct_region(res.objects, 5, 5)
        with pytest.raises(ValueError):
            pr.reconstruct_region(res.objects, 0, 999)
        with pytest.raises(ValueError):
            pr.reconstruct_region([], 0, 1)


class TestScalingModel:
    rates = OperationRates(
        refactor=50e6, reconstruct=80e6, ec_encode=400e6, ec_decode=500e6
    )

    def test_filesystem_saturation(self):
        assert ALPINE_FS.bandwidth(1) == 0.5e9
        assert ALPINE_FS.bandwidth(10**6) == 2.5e12
        with pytest.raises(ValueError):
            ALPINE_FS.bandwidth(0)

    def test_compute_scales_with_cores(self):
        m = ClusterScalingModel(self.rates)
        t64 = m.compute_time("refactor", 1e12, 64)
        t1024 = m.compute_time("refactor", 1e12, 1024)
        assert t1024 < t64 / 10

    def test_efficiency_below_perfect(self):
        m = ClusterScalingModel(self.rates, efficiency_exponent=0.9)
        perfect = ClusterScalingModel(self.rates, efficiency_exponent=1.0)
        assert m.compute_time("refactor", 1e12, 256) > perfect.compute_time(
            "refactor", 1e12, 256
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterScalingModel(self.rates, efficiency_exponent=0.3)
        m = ClusterScalingModel(self.rates)
        with pytest.raises(KeyError):
            m.compute_time("warp", 1.0, 1)
        with pytest.raises(ValueError):
            m.compute_time("refactor", 1.0, 0)

    def test_preparation_phase_shapes(self):
        m = ClusterScalingModel(self.rates)
        dp = m.preparation_times("DP", cores=64, original_bytes=1e12,
                                 distribution_latency=100.0)
        assert dp == {"distribute": 100.0}
        ec = m.preparation_times("EC", cores=64, original_bytes=1e12,
                                 ec_stored_bytes=1.33e12,
                                 distribution_latency=50.0)
        assert set(ec) == {"read", "ec_encode", "write", "distribute"}
        rf = m.preparation_times("RF+EC", cores=64, original_bytes=1e12,
                                 refactored_bytes=3e11,
                                 distribution_latency=20.0,
                                 ft_optimize_time=0.1)
        assert set(rf) == {
            "read", "refactor", "ft_optimize", "ec_encode", "write", "distribute",
        }
        with pytest.raises(ValueError):
            m.preparation_times("EC", cores=64, original_bytes=1e12)
        with pytest.raises(ValueError):
            m.preparation_times("??", cores=64, original_bytes=1e12)

    def test_crossover_dynamics(self):
        """The Table 4 shape: at low core counts EC beats RF+EC (refactor
        dominates); at high core counts RF+EC wins (smaller bytes)."""
        m = ClusterScalingModel(self.rates)
        kw_ec = dict(original_bytes=16e12, ec_stored_bytes=16e12 * 4 / 3,
                     distribution_latency=3000.0)
        kw_rf = dict(original_bytes=16e12, refactored_bytes=4e12,
                     distribution_latency=900.0, ft_optimize_time=1.0)
        ec64 = sum(m.preparation_times("EC", cores=64, **kw_ec).values())
        rf64 = sum(m.preparation_times("RF+EC", cores=64, **kw_rf).values())
        ec1024 = sum(m.preparation_times("EC", cores=1024, **kw_ec).values())
        rf1024 = sum(m.preparation_times("RF+EC", cores=1024, **kw_rf).values())
        assert rf64 > ec64
        assert rf1024 < ec1024

    def test_restoration_phase_shapes(self):
        m = ClusterScalingModel(self.rates)
        rf = m.restoration_times("RF+EC", cores=256, original_bytes=1e12,
                                 gathered_bytes=3e11, gathering_latency=10.0,
                                 gather_optimize_time=60.0)
        assert set(rf) == {
            "gather_optimize", "gather", "read", "ec_decode", "reconstruct",
        }
        dp = m.restoration_times("DP", cores=256, original_bytes=1e12,
                                 gathering_latency=99.0)
        assert dp == {"gather": 99.0}
        with pytest.raises(ValueError):
            m.restoration_times("EC", cores=1, original_bytes=1.0)


class TestGPU:
    def test_batched_matches_per_block(self):
        """Batched decomposition must be numerically identical to looping
        over blocks (same kernels, wider batch)."""
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(4, 17, 9)).astype(np.float64)
        stacked, plans = batched_decompose(blocks, max_levels=2)
        for b in range(4):
            single, plans_s = transform.decompose(blocks[b], max_levels=2)
            assert [p.fine_shape for p in plans] == [p.fine_shape for p in plans_s]
            np.testing.assert_allclose(stacked[b], single, atol=1e-12)

    def test_batched_roundtrip(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(size=(3, 9, 9, 9))
        stacked, plans = batched_decompose(blocks)
        back = batched_recompose(stacked, plans)
        np.testing.assert_allclose(back, blocks, atol=1e-10)

    def test_batched_validation(self):
        with pytest.raises(ValueError):
            batched_decompose(np.zeros(5))

    def test_device_model(self):
        assert K80_MODEL.device_throughput("refactor", 1e8) == pytest.approx(3.7e8)
        assert K80_MODEL.device_throughput("reconstruct", 1e8) == pytest.approx(20.3e8)
        with pytest.raises(KeyError):
            K80_MODEL.device_throughput("encode", 1e8)
        with pytest.raises(ValueError):
            K80_MODEL.device_throughput("refactor", 0.0)
        with pytest.raises(ValueError):
            GPUDeviceModel("bad", -1.0, 2.0)
