"""End-to-end tests of the RAPIDS pipeline (prepare + restore)."""

import numpy as np
import pytest

from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer, relative_linf_error
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


def smooth_field(n=33, seed=0):
    rng = np.random.default_rng(seed)
    ax = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    u = np.zeros([n] * 3)
    for k in (1, 2, 4):
        ph = rng.uniform(0, 2 * np.pi, 3)
        u += (
            np.sin(2 * np.pi * k * ax[0] + ph[0])
            * np.cos(2 * np.pi * k * ax[1] + ph[1])
            * np.sin(2 * np.pi * k * ax[2] + ph[2])
            / k
        )
    return u.astype(np.float32)


@pytest.fixture
def rapids(tmp_path):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp_path / "meta")
    system = RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.25)
    yield system
    catalog.close()


class TestPrepare:
    def test_full_prepare(self, rapids):
        data = smooth_field()
        rep = rapids.prepare("nyx:t", data)
        assert len(rep.ft_config) == 4
        assert rep.ft_config == sorted(rep.ft_config, reverse=True)
        assert rep.storage_overhead <= 0.25 + 1e-9
        assert 0 < rep.expected_error < 1
        assert rep.distribution_latency > 0
        assert set(rep.timings) == {
            "read", "refactor", "ft_optimize", "ec_encode", "write", "metadata",
        }

    def test_fragments_placed(self, rapids):
        data = smooth_field()
        rapids.prepare("obj", data)
        for level in range(4):
            assert len(rapids.cluster.locate("obj", level)) == 16

    def test_metadata_registered(self, rapids):
        rapids.prepare("obj", smooth_field())
        rec = rapids.catalog.get_object("obj")
        assert rec.n_systems == 16
        assert len(rec.level_sizes) == 4
        frag = rapids.catalog.get_fragment("obj", 0, 0)
        assert frag.system_id == 0

    def test_prepare_via_globus_service(self, rapids):
        from repro.transfer import GlobusService

        svc = GlobusService(rapids.cluster.bandwidths, seed=0)
        rep = rapids.prepare("obj", smooth_field(), transfer_service=svc)
        assert rep.distribution_latency > 0
        assert not svc.active_tasks()
        assert any("SUBMIT" in e for e in svc.events)

    def test_prepare_via_flaky_globus_retries(self, rapids):
        from repro.transfer import GlobusService, TaskStatus

        svc = GlobusService(
            rapids.cluster.bandwidths, failure_prob=0.3, seed=1
        )
        rep = rapids.prepare("obj", smooth_field(), transfer_service=svc)
        assert rep.network_bytes > sum(rep.level_sizes)  # retries cost bytes
        outcomes = {t.status for t in svc.tasks.values()}
        assert TaskStatus.FAILED in outcomes  # some attempts failed...
        res = rapids.restore("obj", strategy="naive")  # ...yet data is whole
        assert res.levels_used == 4

    def test_pipelined_prepare_matches_default_path(self, rapids, tmp_path):
        data = smooth_field()
        rep = rapids.prepare("obj", data, measure_errors=False)
        assert set(rep.timings) == {
            "read", "refactor", "ft_optimize", "ec_encode", "write", "metadata",
        }
        # errors are the closed-form bounds on this path
        assert rep.level_errors == sorted(rep.level_errors, reverse=True)

        cluster2 = StorageCluster(paper_bandwidth_profile(16))
        catalog2 = MetadataCatalog(tmp_path / "meta2")
        other = RAPIDS(cluster2, catalog2, refactorer=Refactorer(4), omega=0.25)
        rep2 = other.prepare("obj", data, measure_errors=True)
        # identical payload bytes => identical sizes and FT config
        assert rep.level_sizes == rep2.level_sizes
        assert rep.ft_config == rep2.ft_config

        a = rapids.restore("obj", strategy="naive")
        b = other.restore("obj", strategy="naive")
        assert a.data.tobytes() == b.data.tobytes()
        catalog2.close()

    def test_refactor_workers_knob(self, tmp_path):
        cluster = StorageCluster(paper_bandwidth_profile(8))
        catalog = MetadataCatalog(tmp_path / "meta")
        system = RAPIDS(cluster, catalog, refactor_workers=3)
        assert system.refactorer.workers == 3
        assert system.refactor_workers == 3
        # an explicit refactorer keeps its own setting...
        ref = Refactorer(4, workers=2)
        system2 = RAPIDS(cluster, catalog, refactorer=ref)
        assert system2.refactorer.workers == 2
        # ...unless refactor_workers is also given explicitly
        system3 = RAPIDS(
            cluster, catalog, refactorer=Refactorer(4, workers=2),
            refactor_workers=5,
        )
        assert system3.refactorer.workers == 5
        catalog.close()

    def test_fragment_files_written(self, rapids, tmp_path):
        rapids.prepare("a:b", smooth_field(n=17), fragment_dir=tmp_path / "frags")
        files = list((tmp_path / "frags").glob("*.rdc"))
        assert len(files) == 4 * 16
        from repro.formats import read_fragment_file

        attrs, payload = read_fragment_file(files[0])
        assert attrs["object_name"] == "a:b"
        assert len(payload) > 0


class TestRestore:
    def test_no_failures_full_accuracy(self, rapids):
        data = smooth_field()
        prep = rapids.prepare("obj", data)
        rep = rapids.restore("obj", strategy="naive")
        assert rep.levels_used == 4
        err = relative_linf_error(data, rep.data)
        assert err == pytest.approx(prep.level_errors[-1], abs=1e-9)
        assert err < 1e-4

    def test_partial_failures_partial_accuracy(self, rapids):
        data = smooth_field()
        prep = rapids.prepare("obj", data)
        ms = prep.ft_config
        # fail just more systems than the bottom level tolerates
        n_fail = ms[-1] + 1
        rapids.cluster.fail(list(range(n_fail)))
        rep = rapids.restore("obj", strategy="naive")
        assert rep.levels_used < 4
        err = relative_linf_error(data, rep.data)
        assert err == pytest.approx(prep.level_errors[rep.levels_used - 1], abs=1e-9)

    def test_catastrophic_failure(self, rapids):
        prep = rapids.prepare("obj", smooth_field())
        rapids.cluster.fail(list(range(prep.ft_config[0] + 1)))
        rep = rapids.restore("obj", strategy="naive")
        assert rep.levels_used == 0
        assert rep.data is None
        assert rep.achieved_error == 1.0

    def test_strategies_give_same_data(self, rapids):
        data = smooth_field()
        rapids.prepare("obj", data)
        rapids.cluster.fail([3, 7])
        outs = {}
        for strat in ("random", "naive", "optimized"):
            rep = rapids.restore(
                "obj", strategy=strat, solver_budget=0.2, seed=1
            )
            outs[strat] = rep
        ref = outs["naive"].data
        for strat, rep in outs.items():
            np.testing.assert_array_equal(rep.data, ref)

    def test_unknown_strategy(self, rapids):
        rapids.prepare("obj", smooth_field(n=17))
        with pytest.raises(ValueError):
            rapids.restore("obj", strategy="psychic")

    def test_adaptive_strategy(self, rapids):
        data = smooth_field()
        rapids.prepare("obj", data)
        # first restore seeds the throughput history (§4.3)
        rapids.restore("obj", strategy="naive")
        assert rapids.catalog.bandwidth_estimate(0) is not None
        res = rapids.restore("obj", strategy="adaptive", solver_budget=0.2)
        assert res.levels_used == 4
        np.testing.assert_array_equal(
            res.data, rapids.restore("obj", strategy="naive").data
        )

    def test_restore_unknown_object(self, rapids):
        with pytest.raises(KeyError):
            rapids.restore("ghost")

    def test_timings_present(self, rapids):
        rapids.prepare("obj", smooth_field(n=17))
        rep = rapids.restore("obj", strategy="naive")
        assert set(rep.timings) == {
            "gather_optimize", "gather", "ec_decode", "reconstruct",
        }
        assert rep.total_time > 0

    def test_gathering_latency_includes_solver_charge(self, rapids):
        rapids.prepare("obj", smooth_field(n=17))
        rep = rapids.restore(
            "obj", strategy="optimized", solver_budget=0.1,
            charged_solver_time=60.0,
        )
        assert rep.gathering_latency >= 60.0


class TestSurvivability:
    @pytest.mark.parametrize("n_fail", [1, 2, 3, 4])
    def test_accuracy_degrades_monotonically(self, rapids, n_fail):
        data = smooth_field()
        rapids.prepare("obj", data)
        rapids.cluster.fail(list(range(n_fail)))
        rep = rapids.restore("obj", strategy="naive")
        if rep.data is not None:
            err = relative_linf_error(data, rep.data)
            assert err < 1.0

    def test_repeated_fail_restore_cycles(self, rapids):
        data = smooth_field()
        rapids.prepare("obj", data)
        prev_err = 0.0
        for n_fail in (6, 4, 2, 0):
            rapids.cluster.restore_all()
            rapids.cluster.fail(list(range(n_fail)))
            rep = rapids.restore("obj", strategy="naive")
            err = relative_linf_error(data, rep.data)
            assert err >= 0
        assert rep.levels_used == 4
