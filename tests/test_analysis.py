"""Tests for the scientific quality metrics."""

import numpy as np
import pytest

from repro.datasets import nyx_velocity
from repro.refactor import Refactorer
from repro.refactor.analysis import QualityReport, assess, psnr, rmse, spectrum_error


FIELD = nyx_velocity((33, 33, 33)).astype(np.float64)


class TestBasicMetrics:
    def test_rmse_identity(self):
        assert rmse(FIELD, FIELD) == 0.0

    def test_rmse_hand_calc(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == pytest.approx(1.0)

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_psnr_identity_inf(self):
        assert psnr(FIELD, FIELD) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        small = FIELD + 0.001 * rng.normal(size=FIELD.shape)
        big = FIELD + 0.1 * rng.normal(size=FIELD.shape)
        assert psnr(FIELD, small) > psnr(FIELD, big)

    def test_spectrum_identity(self):
        assert spectrum_error(FIELD, FIELD) == 0.0

    def test_spectrum_detects_smoothing(self):
        """Zeroing high-frequency content perturbs the spectrum more than
        adding an equal-RMS constant offset does."""
        spec = np.fft.rfftn(FIELD)
        spec_lp = spec.copy()
        spec_lp[8:, :, :] = 0
        lowpassed = np.fft.irfftn(spec_lp, s=FIELD.shape,
                                  axes=(0, 1, 2))
        offset = FIELD + rmse(FIELD, lowpassed)
        assert spectrum_error(FIELD, lowpassed) > spectrum_error(FIELD, offset)


class TestAssess:
    def test_identity_report(self):
        rep = assess(FIELD, FIELD)
        assert rep.rel_linf == 0.0
        assert rep.rmse == 0.0
        assert rep.mean_drift == 0.0
        assert rep.spectrum_rel_l2 == 0.0

    def test_refactored_reconstruction_quality(self):
        r = Refactorer(4, num_planes=24)
        obj = r.refactor(FIELD.astype(np.float32))
        back = r.reconstruct(obj).astype(np.float64)
        rep = assess(FIELD, back)
        assert rep.rel_linf < 1e-5
        assert rep.psnr_db > 80
        assert abs(rep.mean_drift) < 1e-5
        assert abs(rep.std_drift) < 1e-5
        assert rep.spectrum_rel_l2 < 1e-4

    def test_progressive_quality_ordering(self):
        """Each additional component improves every metric."""
        r = Refactorer(4, num_planes=24)
        obj = r.refactor(FIELD.astype(np.float32))
        reports = [
            assess(FIELD, r.reconstruct(obj, upto=j).astype(np.float64))
            for j in (1, 2, 4)
        ]
        assert reports[0].rmse > reports[1].rmse > reports[2].rmse
        assert reports[0].psnr_db < reports[1].psnr_db < reports[2].psnr_db

    def test_acceptable_for(self):
        r = Refactorer(4, num_planes=24)
        obj = r.refactor(FIELD.astype(np.float32))
        coarse = assess(FIELD, r.reconstruct(obj, upto=1).astype(np.float64))
        full = assess(FIELD, r.reconstruct(obj).astype(np.float64))
        assert full.acceptable_for(max_rel_linf=1e-4, min_psnr_db=60)
        assert not coarse.acceptable_for(max_rel_linf=1e-4)

    def test_offset_field_drift_scaling(self):
        """Absolute-pressure-like fields (huge offset, small dynamic
        range) get drift scaled by the range, not the offset."""
        base = 1e5 + FIELD
        shifted = base + 0.01 * (FIELD.max() - FIELD.min())
        rep = assess(base, shifted)
        assert rep.mean_drift == pytest.approx(0.01, rel=1e-6)

    def test_constant_field(self):
        c = np.full((8, 8), 3.0)
        rep = assess(c, c)
        assert rep.rel_linf == 0.0
        assert np.isfinite(rep.mean_drift)
