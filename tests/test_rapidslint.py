"""Unit tests for the rapidslint static-analysis subsystem.

Each rule gets at least one positive (fires) and one negative (stays
quiet) case; the suppression machinery gets its own section.  Sources
are analyzed as strings with a fake path, since several rules are
path-scoped (EC / solver modules).
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import META_RULE_ID, Analyzer, Severity, all_rules, get_rule

EC_PATH = "src/repro/ec/somemod.py"
SOLVER_PATH = "src/repro/optimize/somesolver.py"


def lint(source, *, path="src/repro/mod.py", select=None):
    analyzer = Analyzer(select=select)
    return analyzer.check_source(textwrap.dedent(source), path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRegistry:
    def test_at_least_eight_rules_registered(self):
        assert len(all_rules()) >= 8

    def test_whole_program_rules_registered(self):
        ids = {r.rule_id for r in all_rules()}
        assert {"RPD113", "RPD114", "RPD115", "RPD116"} <= ids

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.rule_id.startswith("RPD")
            assert rule.name
            assert rule.description
            assert rule.rationale
            assert isinstance(rule.severity, Severity)

    def test_get_rule(self):
        assert get_rule("RPD101").name == "gf256-raw-arith"

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError):
            Analyzer(select=["RPD999"])


class TestGFRawArith:
    def test_positive_star_on_gf_result(self):
        findings = lint(
            """
            from repro.ec import gf256
            def parity(a, b):
                prod = gf256.mul(a, b)
                return prod * 2
            """,
            select=["RPD101"],
        )
        assert rule_ids(findings) == ["RPD101"]

    def test_positive_direct_import_and_chain(self):
        findings = lint(
            """
            from repro.ec.gf256 import mul
            def f(a, b):
                x = mul(a, b)
                y = x[1:]
                return y + b
            """,
            select=["RPD101"],
        )
        assert rule_ids(findings) == ["RPD101"]

    def test_negative_gf_add_used(self):
        findings = lint(
            """
            from repro.ec import gf256
            def parity(a, b):
                prod = gf256.mul(a, b)
                return gf256.add(prod, b)
            """,
            select=["RPD101"],
        )
        assert findings == []

    def test_negative_module_without_gf_import(self):
        findings = lint(
            """
            def scale(prod, b):
                return prod * b
            """,
            select=["RPD101"],
        )
        assert findings == []


class TestECAstypeCopy:
    def test_positive_astype_without_copy(self):
        findings = lint(
            "def f(a):\n    return a.astype('uint16')\n",
            path=EC_PATH,
            select=["RPD102"],
        )
        assert rule_ids(findings) == ["RPD102"]

    def test_negative_with_copy_or_outside_ec(self):
        clean = "def f(a):\n    return a.astype('uint16', copy=False)\n"
        assert lint(clean, path=EC_PATH, select=["RPD102"]) == []
        dirty = "def f(a):\n    return a.astype('uint16')\n"
        assert lint(dirty, path="src/repro/core/x.py", select=["RPD102"]) == []


class TestThreadMapSharedState:
    def test_positive_append_to_closure(self):
        findings = lint(
            """
            def run(items):
                results = []
                def work(item):
                    results.append(item * 2)
                thread_map(work, items, workers=4)
                return results
            """,
            select=["RPD103"],
        )
        assert rule_ids(findings) == ["RPD103"]

    def test_positive_self_write_via_pool(self):
        findings = lint(
            """
            class Job:
                def work(self, item):
                    self.done += 1
                def run(self, pool, items):
                    pool.map(self.work, items)
            """,
            select=["RPD103"],
        )
        assert rule_ids(findings) == ["RPD103"]

    def test_negative_write_under_lock(self):
        findings = lint(
            """
            def run(items, lock):
                results = []
                def work(item):
                    with lock:
                        results.append(item * 2)
                thread_map(work, items, workers=4)
                return results
            """,
            select=["RPD103"],
        )
        assert findings == []

    def test_negative_pure_callable(self):
        findings = lint(
            """
            def run(items):
                def work(item):
                    local = [item]
                    local.append(item)
                    return item * 2
                return thread_map(work, items, workers=4)
            """,
            select=["RPD103"],
        )
        assert findings == []


class TestSolverNondeterminism:
    def test_positive_time_time(self):
        findings = lint(
            "import time\ndef solve():\n    return time.time()\n",
            path=SOLVER_PATH,
            select=["RPD104"],
        )
        assert rule_ids(findings) == ["RPD104"]

    def test_positive_unseeded_default_rng(self):
        findings = lint(
            "import numpy as np\ndef solve():\n"
            "    rng = np.random.default_rng()\n    return rng\n",
            path=SOLVER_PATH,
            select=["RPD104"],
        )
        assert rule_ids(findings) == ["RPD104"]

    def test_positive_legacy_np_random(self):
        findings = lint(
            "import numpy as np\ndef solve():\n"
            "    return np.random.shuffle([1, 2])\n",
            path=SOLVER_PATH,
            select=["RPD104"],
        )
        assert rule_ids(findings) == ["RPD104"]

    def test_negative_seeded_and_perf_counter(self):
        findings = lint(
            """
            import time
            import numpy as np
            def solve(seed):
                rng = np.random.default_rng(seed)
                start = time.perf_counter()
                return rng, start
            """,
            path=SOLVER_PATH,
            select=["RPD104"],
        )
        assert findings == []

    def test_negative_outside_solver_scope(self):
        findings = lint(
            "import time\ndef now():\n    return time.time()\n",
            path="src/repro/transfer/x.py",
            select=["RPD104"],
        )
        assert findings == []


class TestBroadExcept:
    def test_positive_bare_except(self):
        findings = lint(
            "def f():\n    try:\n        g()\n    except:\n        pass\n",
            select=["RPD105"],
        )
        assert rule_ids(findings) == ["RPD105"]

    def test_positive_swallowed_exception(self):
        findings = lint(
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        pass\n",
            select=["RPD105"],
        )
        assert rule_ids(findings) == ["RPD105"]

    def test_negative_reraise_or_narrow(self):
        reraise = (
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        cleanup()\n        raise\n"
        )
        assert lint(reraise, select=["RPD105"]) == []
        narrow = (
            "def f():\n    try:\n        g()\n"
            "    except (ValueError, KeyError):\n        pass\n"
        )
        assert lint(narrow, select=["RPD105"]) == []


class TestAllDrift:
    def test_positive_missing_definition(self):
        findings = lint(
            '__all__ = ["gone"]\n\ndef here():\n    pass\n',
            select=["RPD106"],
        )
        assert set(rule_ids(findings)) == {"RPD106"}
        assert any("gone" in f.message for f in findings)

    def test_positive_public_def_not_exported(self):
        findings = lint(
            '__all__ = ["a"]\n\ndef a():\n    pass\n\ndef b():\n    pass\n',
            select=["RPD106"],
        )
        assert rule_ids(findings) == ["RPD106"]
        assert "b" in findings[0].message

    def test_negative_in_sync(self):
        source = (
            '__all__ = ["a", "CONST"]\n\nCONST = 3\n\n'
            "def a():\n    pass\n\ndef _private():\n    pass\n"
        )
        assert lint(source, select=["RPD106"]) == []

    def test_negative_no_all(self):
        assert lint("def a():\n    pass\n", select=["RPD106"]) == []


class TestMutableDefault:
    def test_positive_list_literal(self):
        findings = lint("def f(x, acc=[]):\n    return acc\n",
                        select=["RPD107"])
        assert rule_ids(findings) == ["RPD107"]

    def test_positive_dict_call(self):
        findings = lint("def f(x, acc=dict()):\n    return acc\n",
                        select=["RPD107"])
        assert rule_ids(findings) == ["RPD107"]

    def test_negative_none_default(self):
        assert lint("def f(x, acc=None):\n    return acc\n",
                    select=["RPD107"]) == []


class TestOpenNoContext:
    def test_positive_loose_open(self):
        findings = lint("def f(p):\n    fh = open(p)\n    return fh.read()\n",
                        select=["RPD108"])
        assert rule_ids(findings) == ["RPD108"]

    def test_negative_with_block(self):
        source = (
            "def f(p):\n    with open(p) as fh:\n        return fh.read()\n"
        )
        assert lint(source, select=["RPD108"]) == []


class TestECImplicitDtype:
    def test_positive_float_default(self):
        findings = lint(
            "import numpy as np\ndef f(n):\n    return np.zeros(n)\n",
            path=EC_PATH,
            select=["RPD109"],
        )
        assert rule_ids(findings) == ["RPD109"]

    def test_negative_explicit_dtype_or_outside_ec(self):
        clean = (
            "import numpy as np\n"
            "def f(n):\n    return np.zeros(n, dtype=np.uint8)\n"
        )
        assert lint(clean, path=EC_PATH, select=["RPD109"]) == []
        dirty = "import numpy as np\ndef f(n):\n    return np.zeros(n)\n"
        assert lint(dirty, path="src/repro/sim/x.py", select=["RPD109"]) == []


class TestUnlockedGlobalCache:
    def test_positive_unguarded_fill(self):
        findings = lint(
            """
            _CACHE = None
            def table():
                global _CACHE
                if _CACHE is None:
                    _CACHE = build()
                return _CACHE
            """,
            select=["RPD110"],
        )
        assert rule_ids(findings) == ["RPD110"]

    def test_negative_guarded_fill(self):
        findings = lint(
            """
            import threading
            _CACHE = None
            _CACHE_LOCK = threading.Lock()
            def table():
                global _CACHE
                if _CACHE is None:
                    with _CACHE_LOCK:
                        if _CACHE is None:
                            _CACHE = build()
                return _CACHE
            """,
            select=["RPD110"],
        )
        assert findings == []

    def test_positive_dict_subscript_fill(self):
        findings = lint(
            """
            _CACHE = {}
            def table(n):
                if n not in _CACHE:
                    _CACHE[n] = build(n)
                return _CACHE[n]
            """,
            select=["RPD110"],
        )
        assert rule_ids(findings) == ["RPD110"]

    def test_positive_dict_get_fill(self):
        findings = lint(
            """
            _CACHE = {}
            def table(n):
                hit = _CACHE.get(n)
                if hit is None:
                    _CACHE[n] = hit = build(n)
                return hit
            """,
            select=["RPD110"],
        )
        assert rule_ids(findings) == ["RPD110"]

    def test_negative_dict_fill_under_lock(self):
        findings = lint(
            """
            import threading
            _CACHE = {}
            _LOCK = threading.Lock()
            def table(n):
                if n not in _CACHE:
                    with _LOCK:
                        if n not in _CACHE:
                            _CACHE[n] = build(n)
                return _CACHE[n]
            """,
            select=["RPD110"],
        )
        assert findings == []

    def test_negative_dict_fill_without_membership_check(self):
        # Registry pattern: unconditional subscript assignment with no
        # get/containment check first is not fill-on-first-use.
        findings = lint(
            """
            _REGISTRY = {}
            def register(name, value):
                _REGISTRY[name] = value
                return value
            """,
            select=["RPD110"],
        )
        assert findings == []


class TestUnverifiedPayload:
    def test_positive_payload_consumed_without_check(self):
        findings = lint(
            """
            import numpy as np
            def rebuild(cluster, name, level, idx):
                frag = cluster.fetch(name, level, idx)
                return np.frombuffer(frag.payload, dtype=np.uint8)
            """,
            select=["RPD111"],
        )
        assert rule_ids(findings) == ["RPD111"]
        assert ".payload" in findings[0].message

    def test_one_finding_per_scope_at_first_use(self):
        findings = lint(
            """
            def gather(a, b):
                return a.payload + b.payload
            """,
            select=["RPD111"],
        )
        assert len(findings) == 1

    def test_negative_verify_in_scope(self):
        findings = lint(
            """
            from repro.formats.checksum import verify
            def read(frag, expected):
                verify(frag.payload, expected)
                return frag.payload
            """,
            select=["RPD111"],
        )
        assert findings == []

    def test_negative_crc32_in_scope(self):
        findings = lint(
            """
            from zlib import crc32
            def read(frag, expected):
                if crc32(frag.payload) != expected:
                    raise ValueError("rot")
                return frag.payload
            """,
            select=["RPD111"],
        )
        assert findings == []

    def test_negative_none_comparison_only(self):
        findings = lint(
            """
            def simulated(frag):
                return frag.payload is None
            """,
            select=["RPD111"],
        )
        assert findings == []

    def test_negative_outside_repro_package(self):
        findings = lint(
            "def f(frag):\n    return frag.payload\n",
            path="tools/scratch.py",
            select=["RPD111"],
        )
        assert findings == []

    def test_nested_function_is_its_own_scope(self):
        # a verify() in the outer scope does not bless a closure that
        # consumes the payload unchecked
        findings = lint(
            """
            def outer(frag, expected):
                verify(b"", expected)
                def attempt():
                    return frag.payload
                return attempt()
            """,
            select=["RPD111"],
        )
        assert rule_ids(findings) == ["RPD111"]

    def test_suppression_with_justification(self):
        findings = lint(
            """
            def rot(frag):
                # rapidslint: disable-next=RPD111 -- damage site: rot is deliberate
                return frag.payload[::-1]
            """,
            select=["RPD111"],
        )
        assert findings == []


class TestSuppressions:
    DIRTY = "def f(x, acc=[]):  # rapidslint: disable=RPD107 -- test fixture\n    return acc\n"

    def test_inline_suppression_silences(self):
        assert lint(self.DIRTY, select=["RPD107"]) == []

    def test_disable_next_silences(self):
        source = (
            "# rapidslint: disable-next=RPD107 -- test fixture\n"
            "def f(x, acc=[]):\n    return acc\n"
        )
        assert lint(source, select=["RPD107"]) == []

    def test_disable_file_silences(self):
        source = (
            "# rapidslint: disable-file=RPD107 -- test fixture\n"
            "def f(x, acc=[]):\n    return acc\n"
            "def g(x, acc={}):\n    return acc\n"
        )
        assert lint(source, select=["RPD107"]) == []

    def test_suppression_without_justification_is_reported(self):
        source = (
            "# rapidslint: disable-next=RPD107\n"
            "def f(x, acc=[]):\n    return acc\n"
        )
        findings = lint(source, select=["RPD107"])
        ids = rule_ids(findings)
        # the malformed suppression is reported AND does not silence
        assert META_RULE_ID in ids and "RPD107" in ids

    def test_unknown_rule_id_is_reported(self):
        source = "x = 1  # rapidslint: disable=RPD999 -- whatever\n"
        findings = lint(source)
        assert rule_ids(findings) == [META_RULE_ID]
        assert "unknown rule" in findings[0].message

    def test_unused_suppression_is_reported(self):
        source = "x = 1  # rapidslint: disable=RPD107 -- stale\n"
        findings = lint(source, select=["RPD107"])
        assert rule_ids(findings) == [META_RULE_ID]
        assert "unused" in findings[0].message

    def test_docstring_example_is_not_a_suppression(self):
        source = (
            '"""Docs.\n\n    # rapidslint: disable=RPD107 -- example\n"""\n'
            "def f(x, acc=[]):\n    return acc\n"
        )
        findings = lint(source, select=["RPD107"])
        assert rule_ids(findings) == ["RPD107"]

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


class TestAnalyzerDriver:
    def test_syntax_error_is_reported_not_raised(self):
        findings = lint("def f(:\n")
        assert rule_ids(findings) == [META_RULE_ID]
        assert findings[0].severity == Severity.ERROR

    def test_check_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            "def f(x, acc=[]):\n    return acc\n"
        )
        (tmp_path / "pkg" / "good.py").write_text("X = 1\n")
        analyzer = Analyzer(select=["RPD107"])
        findings = analyzer.check_paths([tmp_path])
        assert rule_ids(findings) == ["RPD107"]
        assert findings[0].path.endswith("bad.py")

    def test_repo_tree_is_clean(self):
        """The acceptance gate: rapidslint exits 0 on the whole tree."""
        repo = Path(__file__).resolve().parent.parent
        findings = Analyzer().check_paths([repo / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCLI:
    def _run(self, *argv):
        import os

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *argv],
            capture_output=True,
            text=True,
            cwd=repo,
            env=env,
        )

    def test_lint_src_exits_zero(self):
        proc = self._run("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_lint_reports_finding_and_exits_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n")
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "RPD107" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        assert "RPD101" in proc.stdout and "gf256-raw-arith" in proc.stdout

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n")
        proc = self._run(str(bad), "--format", "json")
        import json

        findings = json.loads(proc.stdout[: proc.stdout.rindex("]") + 1])
        assert findings[0]["rule"] == "RPD107"


class TestProcessPoolCallable:
    def test_positive_lambda_to_submit(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            with ProcessPoolExecutor(max_workers=2) as pool:
                return [pool.submit(lambda x: x + 1, i) for i in items]
        """
        findings = lint(source, select=["RPD112"])
        assert rule_ids(findings) == ["RPD112"]
        assert "lambda" in findings[0].message

    def test_positive_nested_function_to_map(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            def worker(x):
                return x * 2
            pool = ProcessPoolExecutor()
            return list(pool.map(worker, items))
        """
        findings = lint(source, select=["RPD112"])
        assert rule_ids(findings) == ["RPD112"]
        assert "worker" in findings[0].message

    def test_positive_bound_method(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor

        class Engine:
            def _work(self, x):
                return x

            def run(self, items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(self._work, items))
        """
        findings = lint(source, select=["RPD112"])
        assert rule_ids(findings) == ["RPD112"]
        assert "self._work" in findings[0].message

    def test_positive_direct_constructor_call(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            return ProcessPoolExecutor().map(lambda x: x, items)
        """
        assert rule_ids(lint(source, select=["RPD112"])) == ["RPD112"]

    def test_negative_module_level_worker(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor

        def _worker(x):
            return x + 1

        def run(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, items))
        """
        assert lint(source, select=["RPD112"]) == []

    def test_negative_thread_pool_lambda_allowed(self):
        # Thread pools share the interpreter: no pickling, RPD103 owns
        # their safety story.
        source = """
        from concurrent.futures import ThreadPoolExecutor

        def run(items):
            with ThreadPoolExecutor() as pool:
                return list(pool.map(lambda x: x + 1, items))
        """
        assert lint(source, select=["RPD112"]) == []

    def test_negative_unrelated_submit_method(self):
        source = """
        def run(queue, items):
            return [queue.submit(lambda x: x, i) for i in items]
        """
        assert lint(source, select=["RPD112"]) == []


# ---------------------------------------------------------------------------
# whole-program rules (RPD113-RPD116)


def lint_project(sources, *, select=None):
    """Analyze a dict of path -> source as one project."""
    analyzer = Analyzer(select=select)
    return analyzer.check_sources(
        {p: textwrap.dedent(s) for p, s in sources.items()}
    )


class TestLockOrder:
    def test_positive_direct_inversion(self):
        findings = lint(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def one():
                with a_lock:
                    with b_lock:
                        pass

            def two():
                with b_lock:
                    with a_lock:
                        pass
            """,
            select=["RPD113"],
        )
        assert rule_ids(findings) == ["RPD113"]
        assert "inversion" in findings[0].message

    def test_positive_transitive_self_deadlock(self):
        findings = lint(
            """
            import threading

            io_lock = threading.Lock()

            def flush():
                with io_lock:
                    pass

            def outer_op():
                with io_lock:
                    flush()
            """,
            select=["RPD113"],
        )
        assert rule_ids(findings) == ["RPD113"]
        assert "self-deadlock" in findings[0].message

    def test_positive_inversion_through_calls(self):
        findings = lint(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def take_a():
                with a_lock:
                    pass

            def take_b():
                with b_lock:
                    pass

            def a_then_b():
                with a_lock:
                    take_b()

            def b_then_a():
                with b_lock:
                    take_a()
            """,
            select=["RPD113"],
        )
        assert rule_ids(findings) == ["RPD113"]
        assert "opposite order" in findings[0].message

    def test_negative_consistent_order(self):
        findings = lint(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def one():
                with a_lock:
                    with b_lock:
                        pass

            def two():
                with a_lock:
                    with b_lock:
                        pass
            """,
            select=["RPD113"],
        )
        assert findings == []

    def test_negative_disjoint_pairs(self):
        findings = lint(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()
            c_lock = threading.Lock()

            def one():
                with a_lock:
                    with b_lock:
                        pass

            def two():
                with c_lock:
                    with a_lock:
                        pass
            """,
            select=["RPD113"],
        )
        assert findings == []


class TestResourceLifecycle:
    def test_positive_lease_leaks_on_exception_path(self):
        findings = lint(
            """
            def fill(arena, n):
                buf = arena.lease(n)
                buf.view()[0] = 1
                arena.release(buf)
            """,
            select=["RPD114"],
        )
        assert rule_ids(findings) == ["RPD114"]
        assert "exception path" in findings[0].message

    def test_positive_shm_never_closed(self):
        findings = lint(
            """
            from multiprocessing import shared_memory

            def copy_out(name, sink):
                shm = shared_memory.SharedMemory(name=name)
                sink.write(shm.buf[:4])
            """,
            select=["RPD114"],
        )
        assert rule_ids(findings) == ["RPD114"]
        assert "any path" in findings[0].message

    def test_positive_init_handle_leaks_if_later_raise(self):
        findings = lint(
            """
            class Reader:
                def __init__(self, path):
                    self._fh = open(path, "rb")
                    self._magic = self._fh.read(4)
            """,
            select=["RPD114"],
        )
        assert rule_ids(findings) == ["RPD114"]
        assert "__init__" in findings[0].message

    def test_negative_released_in_finally(self):
        findings = lint(
            """
            from multiprocessing import shared_memory

            def read_one(name, sink):
                shm = shared_memory.SharedMemory(name=name)
                try:
                    sink.write(shm.buf[:4])
                finally:
                    shm.close()
            """,
            select=["RPD114"],
        )
        assert findings == []

    def test_negative_closure_lease_owned_by_enclosing_arena(self):
        # A lease from a closure-captured arena is cleaned up by the
        # enclosing function's with-block, not inside the closure.
        findings = lint(
            """
            def make_filler(arena):
                def fill(n):
                    buf = arena.lease(n)
                    buf.view()[0] = n
                return fill
            """,
            select=["RPD114"],
        )
        assert findings == []

    def test_negative_guarded_init_cleanup(self):
        findings = lint(
            """
            class Reader:
                def __init__(self, path):
                    self._fh = open(path, "rb")
                    try:
                        self._magic = self._fh.read(4)
                    except BaseException:
                        self.close()
                        raise

                def close(self):
                    self._fh.close()
            """,
            select=["RPD114"],
        )
        assert findings == []


_PLAN_SRC = """
SITES = frozenset({"storage.read", "storage.write"})
"""


class TestChaosCoverage:
    PLAN = "src/repro/chaos/plan.py"

    def test_positive_unguarded_raw_io_in_storage_scope(self):
        findings = lint_project(
            {
                self.PLAN: _PLAN_SRC,
                "src/repro/storage/blob.py": """
                def read_blob(path):
                    with open(path, "rb") as fh:
                        return fh.read()
                """,
            },
            select=["RPD115"],
        )
        assert rule_ids(findings) == ["RPD115"]
        assert "raw I/O" in findings[0].message
        assert findings[0].path == "src/repro/storage/blob.py"

    def test_positive_undeclared_site_string(self):
        findings = lint_project(
            {
                self.PLAN: _PLAN_SRC,
                "src/repro/storage/blob.py": """
                def write_blob(injector, path, data):
                    injector.check("storage.flush", path=str(path))
                    path.write_bytes(data)
                """,
            },
            select=["RPD115"],
        )
        assert rule_ids(findings) == ["RPD115"]
        assert "storage.flush" in findings[0].message
        assert "not declared" in findings[0].message

    def test_negative_guarded_io(self):
        findings = lint_project(
            {
                self.PLAN: _PLAN_SRC,
                "src/repro/storage/blob.py": """
                def read_blob(injector, path):
                    injector.check("storage.read", path=str(path))
                    with open(path, "rb") as fh:
                        return fh.read()
                """,
            },
            select=["RPD115"],
        )
        assert findings == []

    def test_negative_guard_in_direct_callee(self):
        findings = lint_project(
            {
                self.PLAN: _PLAN_SRC,
                "src/repro/storage/blob.py": """
                def _consult(injector, path):
                    injector.check("storage.read", path=str(path))

                def read_blob(injector, path):
                    _consult(injector, path)
                    with open(path, "rb") as fh:
                        return fh.read()
                """,
            },
            select=["RPD115"],
        )
        assert findings == []

    def test_negative_io_outside_storage_seams(self):
        findings = lint_project(
            {
                self.PLAN: _PLAN_SRC,
                "src/repro/core/report.py": """
                def dump(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                """,
            },
            select=["RPD115"],
        )
        assert findings == []

    def test_negative_without_a_plan_module(self):
        findings = lint_project(
            {
                "src/repro/storage/blob.py": """
                def read_blob(path):
                    with open(path, "rb") as fh:
                        return fh.read()
                """,
            },
            select=["RPD115"],
        )
        assert findings == []


class TestSolverReachability:
    SOLVER = "src/repro/optimize/solver.py"

    def test_positive_one_hop_wall_clock(self):
        findings = lint_project(
            {
                "src/repro/core/timing.py": """
                import time

                def now_ms():
                    return time.time() * 1000.0
                """,
                self.SOLVER: """
                from repro.core.timing import now_ms

                def solve(x):
                    return now_ms() + x
                """,
            },
            select=["RPD116"],
        )
        assert rule_ids(findings) == ["RPD116"]
        assert findings[0].path == self.SOLVER
        assert "time.time" in findings[0].message

    def test_positive_two_hop_unseeded_rng(self):
        findings = lint_project(
            {
                "src/repro/core/noise.py": """
                import numpy as np

                def jitter(n):
                    return np.random.rand(n)

                def widen(n):
                    return jitter(n)
                """,
                self.SOLVER: """
                from repro.core.noise import widen

                def place(n):
                    return widen(n)
                """,
            },
            select=["RPD116"],
        )
        assert rule_ids(findings) == ["RPD116"]
        assert "np.random.rand" in findings[0].message
        assert "->" in findings[0].message  # rendered call chain

    def test_negative_direct_call_is_rpd104_territory(self):
        findings = lint_project(
            {
                self.SOLVER: """
                import time

                def solve(x):
                    return time.time() + x
                """,
            },
            select=["RPD116"],
        )
        assert findings == []

    def test_negative_deterministic_helper(self):
        findings = lint_project(
            {
                "src/repro/core/mathy.py": """
                def scale(x):
                    return x * 2.0
                """,
                self.SOLVER: """
                from repro.core.mathy import scale

                def solve(x):
                    return scale(x)
                """,
            },
            select=["RPD116"],
        )
        assert findings == []

    def test_negative_nondet_not_reachable_from_solver(self):
        findings = lint_project(
            {
                "src/repro/core/timing.py": """
                import time

                def now_ms():
                    return time.time() * 1000.0
                """,
                self.SOLVER: """
                def solve(x):
                    return x + 1
                """,
            },
            select=["RPD116"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# incremental cache + changed-file scoping


from repro.analysis import LintCache  # noqa: E402
from repro.analysis.cache import engine_fingerprint  # noqa: E402

_DRIFTED = '__all__ = ["nope"]\n'


class TestIncrementalCache:
    def _tree(self, tmp_path):
        (tmp_path / "a.py").write_text(_DRIFTED)
        (tmp_path / "b.py").write_text("def ok():\n    return 1\n")
        return tmp_path

    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        tree = self._tree(tmp_path)
        cpath = tmp_path / "cache.json"
        first = Analyzer().check_paths([tree], cache=LintCache(cpath))
        cache = LintCache(cpath)
        second = Analyzer().check_paths([tree], cache=cache)
        assert cache.hits == 2 and cache.misses == 0
        assert first == second
        assert any(f.rule_id == "RPD106" for f in second)

    def test_edit_invalidates_only_that_file(self, tmp_path):
        tree = self._tree(tmp_path)
        cpath = tmp_path / "cache.json"
        Analyzer().check_paths([tree], cache=LintCache(cpath))
        (tree / "b.py").write_text("def ok():\n    return 2\n")
        cache = LintCache(cpath)
        Analyzer().check_paths([tree], cache=cache)
        assert cache.hits == 1 and cache.misses == 1

    def test_engine_change_discards_everything(self, tmp_path):
        tree = self._tree(tmp_path)
        cpath = tmp_path / "cache.json"
        Analyzer().check_paths([tree], cache=LintCache(cpath))
        import json

        doc = json.loads(cpath.read_text())
        assert doc["engine"] == engine_fingerprint()
        doc["engine"] = "deadbeefdeadbeef"
        cpath.write_text(json.dumps(doc))
        cache = LintCache(cpath)
        assert cache.files == {}

    def test_one_cache_serves_any_select(self, tmp_path):
        tree = self._tree(tmp_path)
        cpath = tmp_path / "cache.json"
        Analyzer().check_paths([tree], cache=LintCache(cpath))
        cache = LintCache(cpath)
        findings = Analyzer(select=["RPD106"]).check_paths(
            [tree], cache=cache
        )
        assert cache.hits == 2 and cache.misses == 0
        assert rule_ids(findings) == ["RPD106"]

    def test_deleted_file_is_pruned(self, tmp_path):
        tree = self._tree(tmp_path)
        cpath = tmp_path / "cache.json"
        Analyzer().check_paths([tree], cache=LintCache(cpath))
        (tree / "b.py").unlink()
        Analyzer().check_paths([tree], cache=LintCache(cpath))
        cache = LintCache(cpath)
        assert set(cache.files) == {(tree / "a.py").as_posix()}

    def test_restrict_to_filters_reported_findings(self, tmp_path):
        tree = self._tree(tmp_path)
        (tree / "b.py").write_text(_DRIFTED)  # now both files have findings
        a_posix = (tree / "a.py").as_posix()
        findings = Analyzer().check_paths([tree], restrict_to={a_posix})
        assert findings
        assert all(Path(f.path).as_posix() == a_posix for f in findings)


class TestServiceBlockingNoDeadline:
    SERVICE_PATH = "src/repro/service/handlers.py"

    def lint_svc(self, source):
        return lint(source, path=self.SERVICE_PATH, select=["RPD117"])

    # -- true positives ---------------------------------------------------

    def test_positive_bare_queue_get(self):
        findings = self.lint_svc(
            """
            def handle_next(queue):
                req = queue.get()
                return req
            """
        )
        assert rule_ids(findings) == ["RPD117"]
        assert ".get()" in findings[0].message

    def test_positive_future_result_and_fsync(self):
        findings = self.lint_svc(
            """
            import os
            def persist(future, fd):
                out = future.result()
                os.fsync(fd)
                return out
            """
        )
        assert rule_ids(findings) == ["RPD117", "RPD117"]

    def test_positive_event_wait_without_bound(self):
        findings = self.lint_svc(
            """
            def await_completion(event):
                event.wait()
            """
        )
        assert rule_ids(findings) == ["RPD117"]

    # -- false-positive guards (must stay quiet) --------------------------

    def test_negative_timeout_from_deadline(self):
        findings = self.lint_svc(
            """
            def handle_next(queue, deadline):
                req = queue.get(timeout=deadline.remaining())
                return req
            """
        )
        assert findings == []

    def test_negative_dict_get_is_a_lookup(self):
        findings = self.lint_svc(
            """
            def quota_for(quotas, tenant):
                return quotas.get(tenant, 2)
            """
        )
        assert findings == []

    def test_negative_function_consults_deadline(self):
        findings = self.lint_svc(
            """
            def run(request, future):
                if request.deadline is not None and request.deadline.expired:
                    return None
                return future.result()
            """
        )
        assert findings == []

    def test_negative_outside_service_package(self):
        findings = lint(
            """
            def handle_next(queue):
                return queue.get()
            """,
            path="src/repro/core/handlers.py",
            select=["RPD117"],
        )
        assert findings == []

    def test_own_service_package_is_clean(self):
        import pathlib

        analyzer = Analyzer(select=["RPD117"])
        service_dir = pathlib.Path("src/repro/service")
        for path in sorted(service_dir.glob("*.py")):
            findings = analyzer.check_source(path.read_text(), str(path))
            assert findings == [], f"{path}: {findings}"
