"""Edge-case hardening tests across the stack."""

import numpy as np
import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer, relative_linf_error, transform
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


class TestRefactorerInputs:
    def test_rejects_nan(self):
        data = np.ones((9, 9), dtype=np.float32)
        data[3, 3] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            Refactorer(2).refactor(data)

    def test_rejects_inf(self):
        data = np.ones((9, 9), dtype=np.float64)
        data[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or Inf"):
            Refactorer(2).refactor(data)

    def test_constant_field(self):
        data = np.full((17, 17), 7.25, dtype=np.float32)
        r = Refactorer(2)
        obj = r.refactor(data)
        back = r.reconstruct(obj)
        assert relative_linf_error(data, back) < 1e-6

    def test_all_zero_field(self):
        data = np.zeros((17, 17), dtype=np.float32)
        r = Refactorer(2)
        obj = r.refactor(data)
        back = r.reconstruct(obj)
        assert np.all(back == 0)
        assert obj.data_max == 0.0

    def test_negative_only_field(self):
        data = -np.abs(
            np.random.default_rng(0).normal(size=(17, 17))
        ).astype(np.float32) - 1.0
        r = Refactorer(3)
        obj = r.refactor(data)
        back = r.reconstruct(obj)
        assert relative_linf_error(data, back) < 1e-5

    def test_tiny_magnitudes(self):
        data = (1e-30 * np.random.default_rng(1).normal(size=(17, 17))).astype(
            np.float64
        )
        r = Refactorer(2, num_planes=20)
        obj = r.refactor(data)
        back = r.reconstruct(obj)
        assert relative_linf_error(data, back) < 1e-4

    def test_huge_magnitudes(self):
        data = (1e30 * np.random.default_rng(2).normal(size=(17, 17))).astype(
            np.float64
        )
        r = Refactorer(2, num_planes=20)
        back = r.reconstruct(r.refactor(data))
        assert relative_linf_error(data, back) < 1e-4


class TestTransformLayouts:
    def test_fortran_order_input(self):
        u = np.asfortranarray(np.random.default_rng(0).normal(size=(17, 9)))
        mallat, plans = transform.decompose(u)
        back = transform.recompose(mallat, plans)
        np.testing.assert_allclose(back, u, atol=1e-10)

    def test_non_contiguous_view(self):
        base = np.random.default_rng(1).normal(size=(34, 18))
        u = base[::2, ::2]  # strided view, shape (17, 9)
        mallat, plans = transform.decompose(u)
        back = transform.recompose(mallat, plans)
        np.testing.assert_allclose(back, u, atol=1e-10)

    def test_refactor_does_not_mutate_input(self):
        data = np.random.default_rng(3).normal(size=(17, 17)).astype(np.float32)
        copy = data.copy()
        Refactorer(2).refactor(data)
        np.testing.assert_array_equal(data, copy)


class TestPipelineEdges:
    @pytest.fixture
    def rapids(self, tmp_path):
        cluster = StorageCluster(paper_bandwidth_profile(16))
        catalog = MetadataCatalog(tmp_path / "meta")
        system = RAPIDS(cluster, catalog, omega=0.3)
        yield system
        catalog.close()

    @staticmethod
    def _field(seed=0):
        rng = np.random.default_rng(seed)
        x = np.linspace(0, 1, 33)
        ph = rng.uniform(0, 2 * np.pi, 3)
        return (
            np.sin(4 * x + ph[0])[:, None, None]
            * np.cos(3 * x + ph[1])[None, :, None]
            * np.sin(2 * x + ph[2])[None, None, :]
        ).astype(np.float32)

    def test_re_prepare_overwrites(self, rapids):
        a = self._field(0)
        b = self._field(1)
        rapids.prepare("obj", a)
        rapids.prepare("obj", b)
        res = rapids.restore("obj", strategy="naive")
        assert relative_linf_error(b, res.data) < 1e-4
        assert relative_linf_error(a, res.data) > 1e-2

    def test_unicode_object_names(self, rapids):
        data = self._field()
        name = "simulación:θ/φ"
        rapids.prepare(name, data)
        res = rapids.restore(name, strategy="naive")
        assert relative_linf_error(data, res.data) < 1e-4

    def test_progressive_restore(self, rapids):
        data = self._field()
        prep = rapids.prepare("obj", data)
        reports = list(rapids.restore_progressive("obj"))
        assert [r.levels_used for r in reports] == [1, 2, 3, 4]
        errs = [relative_linf_error(data, r.data) for r in reports]
        assert errs == sorted(errs, reverse=True)
        latencies = [r.gathering_latency for r in reports]
        assert latencies[0] < latencies[-1]

    def test_progressive_restore_under_failures(self, rapids):
        data = self._field()
        prep = rapids.prepare("obj", data)
        n_fail = prep.ft_config[-1] + 1
        injector = FaultInjector(FaultPlan.outages(range(n_fail)))
        rapids.attach_injector(injector)
        injector.apply_outages(rapids.cluster)
        reports = list(rapids.restore_progressive("obj"))
        assert len(reports) < 4
        assert reports[-1].levels_used == len(reports)
