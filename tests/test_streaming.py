"""Tests for out-of-core streaming refactoring."""

import json

import numpy as np
import pytest

from repro.parallel import (
    stream_reconstruct,
    stream_reconstruct_region,
    stream_refactor,
)
from repro.refactor import Refactorer, relative_linf_error


def field(n0=48, n=17, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, n0)[:, None, None]
    y = np.linspace(0, 1, n)[None, :, None]
    z = np.linspace(0, 1, n)[None, None, :]
    return (
        np.sin(3 * x) * np.cos(2 * y) * np.sin(4 * z)
        + 0.01 * rng.normal(size=(n0, n, n))
    ).astype(np.float32)


class TestStreamRefactor:
    def test_roundtrip_in_memory_source(self, tmp_path):
        data = field()
        index = stream_refactor(data, tmp_path / "s", block_planes=16)
        assert index["num_blocks"] == 3
        back = stream_reconstruct(tmp_path / "s")
        assert back.shape == data.shape
        assert back.dtype == data.dtype
        assert relative_linf_error(data, back) < 1e-5

    def test_roundtrip_npy_source_memory_mapped(self, tmp_path):
        data = field()
        np.save(tmp_path / "big.npy", data)
        stream_refactor(tmp_path / "big.npy", tmp_path / "s", block_planes=20)
        back = stream_reconstruct(tmp_path / "s")
        assert relative_linf_error(data, back) < 1e-5

    def test_index_written(self, tmp_path):
        data = field()
        stream_refactor(data, tmp_path / "s", block_planes=16)
        index = json.loads((tmp_path / "s" / "index.json").read_text())
        assert index["shape"] == list(data.shape)
        bounds = [(b["start"], b["stop"]) for b in index["blocks"]]
        assert bounds[0][0] == 0 and bounds[-1][1] == data.shape[0]
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0

    def test_progressive_prefix(self, tmp_path):
        data = field()
        stream_refactor(data, tmp_path / "s", block_planes=16,
                        refactorer=Refactorer(4, num_planes=24))
        lossy = stream_reconstruct(tmp_path / "s", upto=1,
                                   refactorer=Refactorer(4))
        full = stream_reconstruct(tmp_path / "s", refactorer=Refactorer(4))
        assert relative_linf_error(data, lossy) > relative_linf_error(data, full)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            stream_refactor(field(), tmp_path / "x", block_planes=1)
        with pytest.raises(ValueError):
            stream_refactor(np.ones((1, 4), np.float32), tmp_path / "x")
        with pytest.raises(FileNotFoundError):
            stream_reconstruct(tmp_path / "missing")


class TestRegion:
    def test_region_matches_full(self, tmp_path):
        data = field()
        stream_refactor(data, tmp_path / "s", block_planes=16)
        full = stream_reconstruct(tmp_path / "s")
        region = stream_reconstruct_region(tmp_path / "s", 10, 37)
        np.testing.assert_array_equal(region, full[10:37])

    def test_region_within_one_block(self, tmp_path):
        data = field()
        stream_refactor(data, tmp_path / "s", block_planes=16)
        region = stream_reconstruct_region(tmp_path / "s", 2, 5)
        full = stream_reconstruct(tmp_path / "s")
        np.testing.assert_array_equal(region, full[2:5])

    def test_region_validation(self, tmp_path):
        stream_refactor(field(), tmp_path / "s", block_planes=16)
        with pytest.raises(ValueError):
            stream_reconstruct_region(tmp_path / "s", 5, 5)
        with pytest.raises(ValueError):
            stream_reconstruct_region(tmp_path / "s", 0, 999)


class TestDurableIndex:
    """The index publish must be atomic and chaos-instrumentable."""

    def test_no_temp_file_left_behind(self, tmp_path):
        stream_refactor(field(), tmp_path / "s", block_planes=16)
        assert (tmp_path / "s" / "index.json").exists()
        assert not (tmp_path / "s" / "index.json.tmp").exists()

    def test_torn_publish_preserves_previous_index(self, tmp_path):
        from repro.chaos import FaultInjector, FaultPlan, FaultSpec, InjectedFault
        from repro.parallel.streaming import write_index

        outdir = tmp_path / "s"
        data = field()
        index = stream_refactor(data, outdir, block_planes=16)
        before = (outdir / "index.json").read_bytes()

        replacement = {"shape": [1], "dtype": "f", "num_blocks": 0,
                       "blocks": []}
        plan = FaultPlan(specs=(
            FaultSpec(site="streaming.index", effect="torn", magnitude=0.3),
        ))
        with pytest.raises(InjectedFault):
            write_index(outdir, replacement, injector=FaultInjector(plan))
        # The committed index is untouched: readers never see the tear.
        assert (outdir / "index.json").read_bytes() == before
        torn = (outdir / "index.json.tmp").read_bytes()
        assert 0 < len(torn) < len(json.dumps(replacement))
        back = stream_reconstruct(outdir)  # directory still restores
        assert back.shape == data.shape

    def test_error_fault_raises_before_write(self, tmp_path):
        from repro.chaos import FaultInjector, FaultPlan, FaultSpec, InjectedFault

        outdir = tmp_path / "s"
        outdir.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="streaming.index", effect="error"),
        ))
        with pytest.raises(InjectedFault):
            stream_refactor(field(), outdir, block_planes=16,
                            injector=FaultInjector(plan))
        assert not (outdir / "index.json").exists()
