"""Tests for the self-describing container format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    Container,
    FormatError,
    crc32,
    read_fragment_file,
    verify,
    write_fragment_file,
)


class TestChecksum:
    def test_crc_verify(self):
        assert verify(b"payload", crc32(b"payload"))
        assert not verify(b"payload", crc32(b"other"))

    def test_crc_empty(self):
        assert crc32(b"") == 0


class TestContainer:
    def test_roundtrip(self):
        c = Container({"object_name": "nyx", "level": 2})
        c.add_block("fragment", b"\x01\x02\x03")
        c.add_block("aux", b"")
        back = Container.from_bytes(c.to_bytes())
        assert back.attrs == {"object_name": "nyx", "level": 2}
        assert back.block("fragment") == b"\x01\x02\x03"
        assert back.block("aux") == b""
        assert back.block_names() == ["fragment", "aux"]

    def test_no_blocks(self):
        c = Container({"empty": True})
        back = Container.from_bytes(c.to_bytes())
        assert back.attrs == {"empty": True}
        assert back.block_names() == []

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            Container.from_bytes(b"XXXX" + b"\x00" * 20)

    def test_corrupted_payload_detected(self):
        c = Container()
        c.add_block("fragment", b"A" * 100)
        raw = bytearray(c.to_bytes())
        raw[-50] ^= 0xFF
        with pytest.raises(FormatError, match="checksum"):
            Container.from_bytes(bytes(raw))

    def test_truncated_payload_detected(self):
        c = Container()
        c.add_block("fragment", b"A" * 100)
        raw = c.to_bytes()
        with pytest.raises(FormatError):
            Container.from_bytes(raw[:-10])

    def test_duplicate_block_rejected(self):
        c = Container()
        c.add_block("x", b"1")
        with pytest.raises(ValueError):
            c.add_block("x", b"2")

    def test_empty_block_name_rejected(self):
        with pytest.raises(ValueError):
            Container().add_block("", b"x")

    def test_file_roundtrip(self, tmp_path):
        c = Container({"k": "v"})
        c.add_block("data", bytes(range(256)))
        c.write(tmp_path / "f.rdc")
        back = Container.read(tmp_path / "f.rdc")
        assert back.block("data") == bytes(range(256))

    @given(
        st.dictionaries(st.text(max_size=10), st.integers(), max_size=5),
        st.binary(max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, attrs, payload):
        c = Container(attrs)
        c.add_block("b", payload)
        back = Container.from_bytes(c.to_bytes())
        assert back.attrs == attrs
        assert back.block("b") == payload


class TestFragmentFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "frag.rdc"
        write_fragment_file(
            path,
            b"fragbytes",
            object_name="nyx:temperature",
            level=1,
            index=7,
            k=12,
            m=4,
            extra={"epoch": 3},
        )
        attrs, payload = read_fragment_file(path)
        assert payload == b"fragbytes"
        assert attrs["object_name"] == "nyx:temperature"
        assert attrs["k"] == 12 and attrs["m"] == 4
        assert attrs["epoch"] == 3

    def test_missing_fragment_block(self, tmp_path):
        c = Container({"object_name": "x"})
        c.write(tmp_path / "bad.rdc")
        with pytest.raises(FormatError):
            read_fragment_file(tmp_path / "bad.rdc")
