"""Tests for the demand-aware tiering baseline (Zebra-like)."""

import numpy as np
import pytest

from repro.core.related import DemandAwareTiering, TierAssignment

SIZES = [1e12, 1e12, 1e12, 1e12]
DEMANDS = [100.0, 10.0, 1.0, 1.0]


@pytest.fixture
def scheme():
    return DemandAwareTiering(16, 0.01)


class TestAssignment:
    def test_validation(self, scheme):
        with pytest.raises(ValueError):
            DemandAwareTiering(2, 0.01)
        with pytest.raises(ValueError):
            DemandAwareTiering(16, 0.0)
        with pytest.raises(ValueError):
            scheme.assign([1.0], [1.0, 2.0], 0.5)
        with pytest.raises(ValueError):
            scheme.assign([0.0], [1.0], 0.5)
        with pytest.raises(ValueError):
            scheme.assign(SIZES, DEMANDS, 0.0)
        with pytest.raises(ValueError):
            scheme.assign(SIZES, DEMANDS, 1e-6)  # below one parity each

    def test_budget_respected(self, scheme):
        for omega in (0.1, 0.25, 0.5):
            ta = scheme.assign(SIZES, DEMANDS, omega)
            assert ta.storage_overhead() <= omega + 1e-9

    def test_hot_objects_get_more_parity(self, scheme):
        ta = scheme.assign(SIZES, DEMANDS, 0.3)
        assert ta.ms[0] >= ta.ms[1] >= ta.ms[2]
        assert ta.ms[0] > ta.ms[3]

    def test_equal_demand_equal_parity(self, scheme):
        ta = scheme.assign(SIZES, [1.0] * 4, 0.3)
        assert max(ta.ms) - min(ta.ms) <= 1

    def test_more_budget_never_hurts(self, scheme):
        lo = scheme.assign(SIZES, DEMANDS, 0.15)
        hi = scheme.assign(SIZES, DEMANDS, 0.45)
        assert hi.weighted_expected_error(0.01) <= lo.weighted_expected_error(
            0.01
        ) * (1 + 1e-9)


class TestWeightedError:
    def test_matches_hand_calc(self):
        from repro.core import ec_unavailability

        ta = TierAssignment((1.0, 1.0), (3.0, 1.0), (4, 2), 16)
        expected = (
            3 * ec_unavailability(16, 4, 0.01)
            + 1 * ec_unavailability(16, 2, 0.01)
        ) / 4
        assert ta.weighted_expected_error(0.01) == pytest.approx(expected)

    def test_zero_demand_rejected(self):
        ta = TierAssignment((1.0,), (0.0,), (2,), 16)
        with pytest.raises(ValueError):
            ta.weighted_expected_error(0.01)

    def test_demand_drift_degrades(self, scheme):
        """The paper's critique: when actual demand inverts the predicted
        ranking, the demand-tuned assignment performs worse than it
        planned for."""
        ta = scheme.assign(SIZES, DEMANDS, 0.25)
        planned = ta.weighted_expected_error(0.01)
        drifted = ta.weighted_expected_error(0.01, demands=DEMANDS[::-1])
        assert drifted > planned * 5
