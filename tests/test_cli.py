"""Tests for the rapids CLI."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def array_file(tmp_path):
    x = np.linspace(0, 1, 33)
    data = np.outer(np.sin(3 * x), np.cos(2 * x)).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestRefactorReconstruct:
    def test_roundtrip(self, tmp_path, array_file, capsys):
        path, data = array_file
        outdir = tmp_path / "refactored"
        assert main(["refactor", str(path), str(outdir), "--components", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 components" in out
        assert (outdir / "manifest.rdc").exists()
        assert len(list(outdir.glob("component-*.bin"))) == 3

        result = tmp_path / "back.npy"
        assert main(["reconstruct", str(outdir), str(result)]) == 0
        back = np.load(result)
        assert back.shape == data.shape
        np.testing.assert_allclose(back, data, atol=1e-5 * np.abs(data).max())

    def test_partial_reconstruct(self, tmp_path, array_file):
        path, data = array_file
        outdir = tmp_path / "r"
        main(["refactor", str(path), str(outdir)])
        out1 = tmp_path / "lossy.npy"
        out4 = tmp_path / "full.npy"
        assert main(["reconstruct", str(outdir), str(out1), "--upto", "1"]) == 0
        assert main(["reconstruct", str(outdir), str(out4)]) == 0
        err1 = np.abs(np.load(out1) - data).max()
        err4 = np.abs(np.load(out4) - data).max()
        assert err4 <= err1

    def test_missing_components_fail(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["reconstruct", str(tmp_path / "empty"), "x.npy"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fast_mode(self, tmp_path, array_file, capsys):
        path, _ = array_file
        assert main(["refactor", str(path), str(tmp_path / "o"), "--fast"]) == 0

    def test_info(self, tmp_path, array_file, capsys):
        path, _ = array_file
        outdir = tmp_path / "r"
        main(["refactor", str(path), str(outdir)])
        capsys.readouterr()
        assert main(["info", str(outdir)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["components"] == 4
        assert info["shape"] == [33, 33]


class TestOptimizeFT:
    def test_heuristic(self, capsys):
        rc = main([
            "optimize-ft", "--sizes", "1e9,5e9,2.5e10,1.25e11",
            "--errors", "4e-3,5e-4,6e-5,1e-7",
            "--original-size", "6e11", "--omega", "0.25",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal m_j" in out

    def test_brute_force_agrees(self, capsys):
        args = [
            "optimize-ft", "--sizes", "1e9,5e9,2.5e10,1.25e11",
            "--errors", "4e-3,5e-4,6e-5,1e-7",
            "--original-size", "6e11", "--omega", "0.25",
        ]
        main(args)
        heur = capsys.readouterr().out.splitlines()[0]
        main(args + ["--brute-force"])
        brute = capsys.readouterr().out.splitlines()[0]
        assert heur == brute

    def test_infeasible(self, capsys):
        rc = main([
            "optimize-ft", "--sizes", "1e11", "--errors", "1e-3",
            "--original-size", "1e11", "--omega", "0.0001",
        ])
        assert rc == 1


class TestBandwidth:
    def test_estimate(self, capsys):
        assert main(["estimate-bandwidth", "--endpoints", "4"]) == 0
        out = capsys.readouterr().out
        assert "gcs-00" in out and "GB/s" in out


class TestSimulate:
    def test_campaign(self, capsys):
        assert main(["simulate", "--epochs", "500", "--p-fail", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "mean relative error" in out

    def test_campaign_validation_error(self, capsys):
        assert main(["simulate", "--ms", "2,2,1,1"]) == 1


class TestValidate:
    def test_monte_carlo_agrees(self, capsys):
        rc = main(["validate", "--trials", "20000", "--p", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "z-score" in out

    def test_bad_config(self, capsys):
        assert main(["validate", "--ms", "1,2"]) == 1
