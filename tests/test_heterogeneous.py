"""Tests for heterogeneous outage probabilities (Poisson-binomial)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import expected_relative_error, prob_more_than_k_failures
from repro.core.heterogeneous import (
    expected_relative_error_hetero,
    poisson_binomial_pmf,
    prob_more_than_k_failures_hetero,
)

MS = [8, 5, 4, 2]
ERRORS = [4e-3, 5e-4, 6e-5, 1e-7]


class TestPmf:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        pmf = poisson_binomial_pmf(rng.uniform(0, 1, 12))
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_uniform_matches_binomial(self):
        from scipy import stats

        pmf = poisson_binomial_pmf(np.full(10, 0.07))
        np.testing.assert_allclose(
            pmf, stats.binom.pmf(range(11), 10, 0.07), atol=1e-14
        )

    def test_degenerate_cases(self):
        pmf = poisson_binomial_pmf([0.0, 0.0])
        assert pmf[0] == 1.0
        pmf = poisson_binomial_pmf([1.0, 1.0, 1.0])
        assert pmf[3] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([])
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5, 1.5])
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.ones((2, 2)))

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_mean_property(self, ps):
        """E[N] = sum p_i (a defining property of Poisson-binomial)."""
        pmf = poisson_binomial_pmf(ps)
        mean = float(np.arange(len(pmf)) @ pmf)
        assert mean == pytest.approx(sum(ps), abs=1e-9)


class TestTailAndExpectedError:
    def test_uniform_reduces_to_binomial_tail(self):
        ps = np.full(16, 0.01)
        for k in (-1, 0, 3, 8, 16):
            assert prob_more_than_k_failures_hetero(ps, k) == pytest.approx(
                prob_more_than_k_failures(16, k, 0.01), abs=1e-14
            )

    def test_uniform_reduces_to_eq5(self):
        ps = np.full(16, 0.01)
        assert expected_relative_error_hetero(ps, MS, ERRORS) == pytest.approx(
            expected_relative_error(16, 0.01, MS, ERRORS), rel=1e-12
        )

    def test_validation(self):
        ps = np.full(16, 0.01)
        with pytest.raises(ValueError):
            expected_relative_error_hetero(ps, [2, 2], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error_hetero(ps, [16, 2], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error_hetero(ps, [], [])

    def test_alpine_theta_mix_worse_than_alpine_only(self):
        """The paper's own facilities: a fleet mixing Theta-grade sites
        (p = 0.052) is strictly worse than the uniform-Alpine assumption
        (p = 0.0107) predicts."""
        alpine = np.full(16, 0.0107)
        mixed = alpine.copy()
        mixed[8:] = 0.052
        e_assumed = expected_relative_error_hetero(alpine, MS, ERRORS)
        e_actual = expected_relative_error_hetero(mixed, MS, ERRORS)
        assert e_actual > e_assumed * 2

    def test_mean_matched_uniform_underestimates(self):
        """Even matching the *average* p, heterogeneity increases the
        deep-failure tail that dominates the expected error."""
        mixed = np.array([0.002] * 8 + [0.098] * 8)
        uniform = np.full(16, float(mixed.mean()))
        e_mixed = expected_relative_error_hetero(mixed, MS, ERRORS)
        e_uniform = expected_relative_error_hetero(uniform, MS, ERRORS)
        assert e_mixed != pytest.approx(e_uniform, rel=1e-3)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(1)
        ps = rng.uniform(0.02, 0.2, size=12)
        ms = [6, 4, 2, 1]
        trials = 200_000
        fails = (rng.random((trials, 12)) < ps[None, :]).sum(axis=1)
        err_arr = np.asarray(ERRORS)
        recoverable = (fails[:, None] <= np.asarray(ms)[None, :]).sum(axis=1)
        scores = np.where(
            recoverable == 0, 1.0, err_arr[np.maximum(recoverable - 1, 0)]
        )
        emp = scores.mean()
        se = scores.std(ddof=1) / np.sqrt(trials)
        analytic = expected_relative_error_hetero(ps, ms, ERRORS)
        assert abs(emp - analytic) < 4.5 * se
