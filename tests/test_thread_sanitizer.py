"""Tests for ``thread_map`` edge semantics and the runtime thread
sanitizer (``repro.analysis.sanitizer``).

The edge-semantics section pins down the contract the EC pipeline
relies on: order preservation, exception propagation identical to the
serial path, and the ``workers <= 1`` inline fast path.  The sanitizer
section proves the shadow-tracker catches a deliberately racy callable
and stays quiet for pure, locked, or explicitly-vouched-for ones.
"""

import threading

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    SANITIZER_ENV,
    ThreadSanitizerError,
    sanitizer_mode,
)
from repro.parallel.threads import thread_map


class TestThreadMapSemantics:
    def test_order_preserved(self):
        items = list(range(100))
        assert thread_map(lambda x: x * x, items, workers=8) == [
            x * x for x in items
        ]

    def test_empty_and_single_item(self):
        assert thread_map(lambda x: x, [], workers=8) == []
        assert thread_map(lambda x: x + 1, [41], workers=8) == [42]

    def test_workers_leq_one_runs_inline(self):
        main = threading.current_thread().name
        seen = []
        thread_map(lambda x: seen.append(threading.current_thread().name),
                   [1, 2, 3], workers=1)
        assert seen == [main] * 3

    def test_pool_path_uses_worker_threads(self):
        main = threading.current_thread().name
        names = thread_map(
            lambda x: threading.current_thread().name, list(range(32)),
            workers=4,
        )
        assert any(n != main for n in names)

    def test_exception_propagates_like_serial(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad item 3")
            return x

        with pytest.raises(ValueError, match="bad item 3"):
            thread_map(boom, range(8), workers=1)
        with pytest.raises(ValueError, match="bad item 3"):
            thread_map(boom, range(8), workers=4)

    def test_generator_input_consumed_once(self):
        gen = (i for i in range(10))
        assert thread_map(lambda x: x, gen, workers=4) == list(range(10))


def racy_map(items, workers=4, **kwargs):
    """A deliberately racy workload: append to a closed-over list."""
    shared = []

    def work(item):
        # rapidslint: disable-next=RPD103 -- deliberately racy fixture the sanitizer must catch
        shared.append(item)
        return item

    return thread_map(work, items, workers=workers, **kwargs)


class TestSanitizerMode:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZER_ENV, raising=False)
        assert sanitizer_mode() is None
        monkeypatch.setenv(SANITIZER_ENV, "0")
        assert sanitizer_mode() is None

    def test_enabled_modes(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        assert sanitizer_mode() == "strict"
        monkeypatch.setenv(SANITIZER_ENV, "warn")
        assert sanitizer_mode() == "warn"


class TestSanitizerCatchesRaces:
    def test_racy_callable_flagged(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        with pytest.raises(ThreadSanitizerError, match="shared"):
            racy_map(list(range(64)))

    def test_warn_mode_warns_instead(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "warn")
        with pytest.warns(RuntimeWarning, match="shared state"):
            out = racy_map(list(range(64)))
        assert out == list(range(64))

    def test_racy_dict_write_flagged(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        counts = {}

        def work(item):
            # rapidslint: disable-next=RPD103 -- deliberately racy fixture the sanitizer must catch
            counts[item % 4] = counts.get(item % 4, 0) + 1

        with pytest.raises(ThreadSanitizerError):
            thread_map(work, range(64), workers=4)

    def test_racy_ndarray_write_flagged(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        acc = np.zeros(4, dtype=np.int64)

        def work(item):
            # rapidslint: disable-next=RPD103 -- deliberately racy fixture the sanitizer must catch
            acc[0] += item  # classic lost-update race

        with pytest.raises(ThreadSanitizerError):
            thread_map(work, range(64), workers=4)

    def test_bound_method_self_mutation_flagged(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")

        class Tally:
            def __init__(self):
                self.total = 0

            def work(self, item):
                # rapidslint: disable-next=RPD103 -- deliberately racy fixture the sanitizer must catch
                self.total += item

        with pytest.raises(ThreadSanitizerError, match="self"):
            thread_map(Tally().work, range(64), workers=4)


class TestSanitizerStaysQuiet:
    def test_pure_callable_clean(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        table = {i: i * i for i in range(64)}  # read-only shared state
        out = thread_map(lambda x: table[x], list(range(64)), workers=4)
        assert out == [i * i for i in range(64)]

    def test_lock_in_closure_presumed_synchronized(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        shared = []
        lock = threading.Lock()

        def work(item):
            with lock:
                shared.append(item)
            return item

        out = thread_map(work, list(range(64)), workers=4)
        assert out == list(range(64))
        assert sorted(shared) == list(range(64))

    def test_allow_shared_writes_vouches_for_disjoint_writes(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        out = np.zeros(64, dtype=np.int64)

        def work(item):
            # rapidslint: disable-next=RPD103 -- disjoint slot per item, vouched via allow_shared_writes
            out[item] = item * 3

        thread_map(work, range(64), workers=4, allow_shared_writes=("out",))
        np.testing.assert_array_equal(out, np.arange(64) * 3)

    def test_inline_path_never_sanitized(self, monkeypatch):
        monkeypatch.setenv(SANITIZER_ENV, "1")
        # workers=1 is the serial fast path; mutation there is ordinary
        # sequential code and must not be flagged.
        assert racy_map(list(range(16)), workers=1) == list(range(16))

    def test_disabled_env_is_zero_overhead_path(self, monkeypatch):
        monkeypatch.delenv(SANITIZER_ENV, raising=False)
        assert racy_map(list(range(16))) == list(range(16))


class TestKernelsUnderSanitizer:
    def test_threaded_encode_plan_is_sanitizer_clean(self, monkeypatch):
        """The EC kernels' disjoint-span output writes are vouched for
        via allow_shared_writes — a threaded apply() must pass."""
        monkeypatch.setenv(SANITIZER_ENV, "1")
        from repro.ec import kernels, matrix

        coeffs = matrix.vandermonde(6, 4)[2:]
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 256, size=(4, 4 * kernels.DEFAULT_CHUNK),
                            dtype=np.uint8)
        plan = kernels.plan_for(coeffs)
        threaded = plan.apply(rows, workers=4)
        serial = plan.apply(rows)
        np.testing.assert_array_equal(threaded, serial)
