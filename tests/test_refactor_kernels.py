"""Tests for the chunked refactoring kernels and their parallel paths.

The overhauled pipeline promises three things this module pins down:

1. *Bit-identity across worker counts* — every stage (quantise, plane
   coding, transform tiling, full refactor) produces byte-identical
   output for any ``workers`` value.
2. *Bit-identity with the original serial algorithms* — compact
   reference implementations of the seed's per-plane loops live in this
   file and every blob/value is compared exactly.
3. *Incremental error measurement is exact* — the masked-prefix path
   matches a from-scratch reconstruction per prefix, bit for bit.
"""

import os
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.threads import balanced_spans
from repro.refactor import Refactorer, relative_linf_error
from repro.refactor.bitplane import PlaneSet, decode_planes, encode_planes
from repro.refactor import components, kernels, transform


def smooth_field(shape, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.linspace(0, 1, n) for n in shape], indexing="ij")
    u = np.zeros(shape)
    for k in (1, 3):
        ph = rng.uniform(0, 2 * np.pi, len(shape))
        term = np.ones(shape)
        for d, ax in enumerate(axes):
            term = term * np.sin(2 * np.pi * k * ax + ph[d])
        u += term / k
    u += 0.01 * rng.standard_normal(shape)
    return u.astype(dtype)


# -- reference implementations (the seed's serial per-plane loops) ------


def _ref_encode(coeffs, num_planes=32, *, lsb_exponent=None):
    """The original serial embedded-sign bitplane encoder, verbatim math."""
    coeffs = np.ascontiguousarray(coeffs, dtype=np.float64).reshape(-1)
    count = coeffs.size
    if count == 0:
        return PlaneSet(0, 0, 0, [])
    amax = float(np.max(np.abs(coeffs)))
    exponent = 0 if (amax == 0.0 or not np.isfinite(amax)) else int(
        np.floor(np.log2(amax))
    )
    if lsb_exponent is not None:
        num_planes = exponent - lsb_exponent + 1
        if num_planes < 1:
            return PlaneSet(count, exponent, 0, [])
    num_planes = min(num_planes, exponent + 1022)
    if num_planes < 1:
        return PlaneSet(count, exponent, 0, [])
    sign = coeffs < 0
    lsb = 2.0 ** (exponent - num_planes + 1)
    q = np.round(np.abs(coeffs) / lsb).astype(np.uint64)
    q = np.minimum(q, np.uint64(2**num_planes - 1))

    def deflate(payload):
        z = zlib.compress(payload, level=6)
        return b"\x01" + z if len(z) < len(payload) else b"\x00" + payload

    planes = []
    seen = np.zeros(count, dtype=bool)
    for i in range(num_planes):
        shift = np.uint64(num_planes - 1 - i)
        bits = ((q >> shift) & np.uint64(1)).astype(bool)
        new = bits & ~seen
        seen |= bits
        bits_blob = deflate(np.packbits(bits).tobytes())
        sign_blob = deflate(np.packbits(sign[new]).tobytes())
        planes.append(struct.pack("<I", len(bits_blob)) + bits_blob + sign_blob)
    return PlaneSet(count, exponent, num_planes, planes)


def _ref_decode(ps, keep=None):
    """The original serial plane-at-a-time decoder, verbatim math."""
    if ps.count == 0:
        return np.zeros(0, dtype=np.float64)
    if keep is None:
        keep = len(ps.planes)

    def inflate(blob):
        return zlib.decompress(blob[1:]) if blob[:1] == b"\x01" else blob[1:]

    def unpack(blob, count):
        raw = np.frombuffer(inflate(blob), dtype=np.uint8)
        return np.unpackbits(raw, count=count).astype(bool)

    q = np.zeros(ps.count, dtype=np.uint64)
    sign = np.zeros(ps.count, dtype=bool)
    seen = np.zeros(ps.count, dtype=bool)
    for i in range(keep):
        (blen,) = struct.unpack_from("<I", ps.planes[i], 0)
        bits_blob = ps.planes[i][4 : 4 + blen]
        sign_blob = ps.planes[i][4 + blen :]
        bits = unpack(bits_blob, ps.count)
        new = bits & ~seen
        nnew = int(new.sum())
        if nnew:
            sign[new] = unpack(sign_blob, nnew)
        seen |= bits
        q |= bits.astype(np.uint64) << np.uint64(ps.num_planes - 1 - i)
    lsb = 2.0 ** (ps.exponent - ps.num_planes + 1)
    out = q.astype(np.float64) * lsb
    np.negative(out, where=sign, out=out)
    return out


# -- bit-identity: new kernels vs the reference loops -------------------


class TestSeedEquivalence:
    @pytest.mark.parametrize("num_planes", [1, 7, 22, 32, 48])
    @pytest.mark.parametrize("size", [1, 5, 100, 4096, 10_000])
    def test_encode_blobs_match_reference(self, num_planes, size):
        rng = np.random.default_rng(size * 100 + num_planes)
        c = rng.normal(size=size) * 2.0 ** rng.integers(-8, 8)
        ps_new = encode_planes(c, num_planes=num_planes)
        ps_ref = _ref_encode(c, num_planes=num_planes)
        assert (ps_new.count, ps_new.exponent, ps_new.num_planes) == (
            ps_ref.count, ps_ref.exponent, ps_ref.num_planes,
        )
        assert ps_new.planes == ps_ref.planes

    def test_encode_blobs_match_reference_anchored(self):
        rng = np.random.default_rng(3)
        c = rng.normal(size=3000) * 1e-4
        for lsb_exp in (-40, -20, -10, 0, 5):
            ps_new = encode_planes(c, lsb_exponent=lsb_exp)
            ps_ref = _ref_encode(c, lsb_exponent=lsb_exp)
            assert ps_new.planes == ps_ref.planes
            assert ps_new.num_planes == ps_ref.num_planes

    @pytest.mark.parametrize("keep", [0, 1, 5, 16, 24])
    def test_decode_matches_reference(self, keep):
        rng = np.random.default_rng(keep)
        c = rng.normal(size=2000)
        ps = encode_planes(c, num_planes=24)
        got = decode_planes(ps, keep=keep)
        want = _ref_decode(ps, keep=keep)
        assert got.tobytes() == want.tobytes()

    def test_chunked_extraction_crosses_chunk_boundaries(self):
        # Force many tiny chunks so span stitching is exercised.
        rng = np.random.default_rng(7)
        c = rng.normal(size=1000)
        qg_small = kernels.quantise(c, 20, workers=4, chunk=64)
        qg_big = kernels.quantise(c, 20, workers=1)
        assert qg_small.packed.tobytes() == qg_big.packed.tobytes()
        assert np.array_equal(qg_small.lead, qg_big.lead)
        assert np.array_equal(qg_small.q, qg_big.q)


# -- bit-identity: threaded vs serial -----------------------------------


class TestWorkerInvariance:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_encode_decode_planes(self, dtype):
        rng = np.random.default_rng(11)
        c = rng.normal(size=5000).astype(dtype)
        ps1 = encode_planes(c, num_planes=26, workers=1)
        ps4 = encode_planes(c, num_planes=26, workers=4)
        assert ps1.planes == ps4.planes
        for keep in (0, 3, 13, 26):
            a = decode_planes(ps1, keep=keep, workers=1)
            b = decode_planes(ps4, keep=keep, workers=4)
            assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("shape", [(65,), (33, 40), (17, 19, 23)])
    def test_transform_tiling(self, shape):
        u = smooth_field(shape, seed=5)
        m1, p1 = transform.decompose(u, workers=1)
        m4, p4 = transform.decompose(u, workers=4)
        assert p1 == p4
        assert m1.tobytes() == m4.tobytes()
        r1 = transform.recompose(m1, p1, workers=1)
        r4 = transform.recompose(m4, p4, workers=4)
        assert r1.tobytes() == r4.tobytes()

    def test_transform_tiling_small_rows_forced(self, monkeypatch):
        # Shrink the tile threshold so even tiny arrays actually tile.
        monkeypatch.setattr(transform, "_MIN_TILE_ROWS", 2)
        u = smooth_field((21, 22), seed=9)
        m1, p1 = transform.decompose(u, workers=1)
        m4, _ = transform.decompose(u, workers=4)
        assert m1.tobytes() == m4.tobytes()
        assert (
            transform.recompose(m1, p1, workers=1).tobytes()
            == transform.recompose(m1, p1, workers=4).tobytes()
        )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_full_refactorer(self, dtype):
        data = smooth_field((25, 26, 27), seed=2, dtype=dtype)
        obj1 = Refactorer(4, num_planes=24, workers=1).refactor(data)
        obj4 = Refactorer(4, num_planes=24, workers=4).refactor(data)
        assert obj1.payloads == obj4.payloads
        assert obj1.errors == obj4.errors
        assert obj1.bounds == obj4.bounds
        r1 = Refactorer(4, workers=1).reconstruct(obj1)
        r4 = Refactorer(4, workers=4).reconstruct(obj4)
        assert r1.tobytes() == r4.tobytes()

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, width=64),
            min_size=1, max_size=300,
        ),
        planes=st.integers(1, 40),
        workers=st.integers(2, 6),
    )
    def test_roundtrip_property_any_workers(self, values, planes, workers):
        c = np.array(values)
        ps_s = encode_planes(c, num_planes=planes, workers=1)
        ps_p = encode_planes(c, num_planes=planes, workers=workers)
        assert ps_s.planes == ps_p.planes
        a = decode_planes(ps_s, workers=1)
        b = decode_planes(ps_p, workers=workers)
        assert a.tobytes() == b.tobytes()

    def test_threaded_pipeline_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("RAPIDS_THREAD_SANITIZER", "1")
        data = smooth_field((22, 23, 24), seed=4)
        obj = Refactorer(3, num_planes=20, workers=4).refactor(data)
        rec = Refactorer(3, workers=4).reconstruct(obj)
        assert relative_linf_error(data, rec) <= obj.errors[-1] + 1e-12


# -- incremental prefix error measurement --------------------------------


class TestIncrementalErrors:
    @pytest.mark.parametrize("num_components", [2, 4, 6])
    def test_matches_from_scratch_reconstruction(self, num_components):
        data = smooth_field((30, 31, 29), seed=8)
        ref = Refactorer(num_components, num_planes=24)
        obj = ref.refactor(data, measure_errors=True)
        for j in range(num_components):
            rec = ref.reconstruct(obj, upto=j + 1)
            fresh = relative_linf_error(data, rec)
            assert obj.errors[j] == fresh

    def test_prefix_values_match_fresh_decode(self):
        rng = np.random.default_rng(13)
        c = rng.normal(size=3000)
        ps = encode_planes(c, num_planes=28)
        qg = kernels.quantise(c, 28)
        dg = qg.decoded()
        for keep in (0, 1, 9, 17, 28):
            masked = kernels.prefix_values(dg, keep)
            fresh = decode_planes(ps, keep=keep)
            assert masked.tobytes() == fresh.tobytes()


# -- the fixed decode_planes validation (satellite) ----------------------


class TestDecodeValidation:
    def test_bad_keep_message_names_valid_range(self):
        c = np.arange(1.0, 9.0)
        ps = encode_planes(c, num_planes=12)
        with pytest.raises(ValueError, match=r"keep must be in \[0, 12\], got 13"):
            decode_planes(ps, keep=13)
        with pytest.raises(ValueError, match=r"keep must be in \[0, 12\], got -1"):
            decode_planes(ps, keep=-1)

    def test_bad_keep_limited_by_present_planes(self):
        c = np.arange(1.0, 9.0)
        full = encode_planes(c, num_planes=12)
        partial = PlaneSet(full.count, full.exponent, full.num_planes,
                           full.planes[:5])
        with pytest.raises(ValueError, match=r"keep must be in \[0, 5\], got 7"):
            decode_planes(partial, keep=7)


# -- supporting machinery ------------------------------------------------


class TestBalancedSpans:
    def test_partition_and_determinism(self):
        for n in (0, 1, 7, 64, 1000):
            for parts in (1, 3, 8, 2000):
                spans = balanced_spans(n, parts)
                assert spans == balanced_spans(n, parts)
                assert spans[0][0] == 0
                covered = [i for lo, hi in spans for i in range(lo, hi)]
                assert covered == list(range(n))
                widths = [hi - lo for lo, hi in spans]
                assert max(widths) - min(widths) <= 1


class TestComponentsThreading:
    def _planesets(self):
        rng = np.random.default_rng(17)
        return [
            encode_planes(rng.normal(size=200) * 2.0**e, num_planes=16)
            for e in (0, -3, -6)
        ]

    def test_serialized_nbytes_exact(self):
        planesets = self._planesets()
        comps = components.group_planes(planesets, 3)
        for comp in comps:
            blob = components.component_to_bytes(comp, planesets)
            assert comp.serialized_nbytes == len(blob)

    def test_threaded_roundtrip_identical(self):
        planesets = self._planesets()
        comps = components.group_planes(planesets, 3)
        ser1 = components.components_to_bytes(comps, planesets, workers=1)
        ser4 = components.components_to_bytes(comps, planesets, workers=4)
        assert ser1 == ser4
        par1 = components.components_from_bytes(ser1, workers=1)
        par4 = components.components_from_bytes(ser1, workers=4)
        assert par1 == par4


class TestRefactorStream:
    def test_matches_refactor_without_measurement(self):
        data = smooth_field((24, 25, 26), seed=21)
        ref = Refactorer(4, num_planes=22)
        obj = ref.refactor(data, measure_errors=False)
        stream = ref.refactor_stream(data)
        assert stream.sizes == obj.sizes
        assert stream.obj.errors == obj.errors
        assert stream.obj.bounds == obj.bounds
        consumed = []
        for j, payload in stream:
            assert len(payload) == stream.sizes[j]
            consumed.append(payload)
        assert consumed == obj.payloads
        assert stream.obj.payloads == obj.payloads

    def test_sizes_known_before_serialisation(self):
        data = smooth_field((20, 21), seed=22)
        stream = Refactorer(3, num_planes=20).refactor_stream(data)
        assert len(stream.sizes) == 3
        assert stream.obj.payloads == []  # nothing serialised yet
        next(iter(stream))
        assert len(stream.obj.payloads) == 1


class TestLevelIndexCache:
    def test_cache_returns_equal_arrays_and_is_reused(self):
        data = smooth_field((17, 18, 19), seed=23)
        _, plans = transform.decompose(data)
        a = transform.level_flat_indices(plans, data.shape)
        b = transform.level_flat_indices(plans, data.shape)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x is y  # cached arrays are shared...
            assert not x.flags.writeable  # ...and frozen
