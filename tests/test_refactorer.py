"""End-to-end tests for the Refactorer (the pMGARD substitute)."""

import numpy as np
import pytest

from repro.refactor import RefactoredObject, Refactorer, relative_linf_error
from repro.refactor.error_model import MGARD_CONSTANT, theoretical_bound
from repro.refactor.bitplane import encode_planes


def smooth_field(n=33, seed=0, dims=3):
    """A smooth multiscale field resembling simulation output."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.linspace(0, 1, n)] * dims, indexing="ij")
    u = np.zeros([n] * dims)
    for k in (1, 2, 5):
        phase = rng.uniform(0, 2 * np.pi, size=dims)
        term = np.ones_like(u)
        for ax, ph in zip(axes, phase):
            term = term * np.sin(2 * np.pi * k * ax + ph)
        u += term / k**2
    return u.astype(np.float32)


class TestRefactorBasics:
    def test_sizes_increase(self):
        obj = Refactorer(4).refactor(smooth_field())
        s = obj.sizes
        assert len(s) == 4
        assert s[0] < s[1] < s[2] < s[3], s

    def test_errors_decrease(self):
        obj = Refactorer(4).refactor(smooth_field())
        e = obj.errors
        assert e[0] > e[1] > e[2] > e[3], e
        assert e[-1] < 1e-4

    def test_full_reconstruction_error_bounded(self):
        data = smooth_field()
        r = Refactorer(4, num_planes=32)
        obj = r.refactor(data)
        back = r.reconstruct(obj)
        assert back.shape == data.shape
        assert back.dtype == data.dtype
        assert relative_linf_error(data, back) < 1e-5

    def test_compression(self):
        """Total refactored size must be below the original (S > sum s_j)."""
        data = smooth_field(n=33)
        obj = Refactorer(4).refactor(data)
        assert obj.total_bytes < obj.original_nbytes
        assert obj.compression_ratio > 1.0

    def test_bounds_dominate_errors(self):
        data = smooth_field()
        obj = Refactorer(4).refactor(data)
        for e, b in zip(obj.errors, obj.bounds):
            assert e <= b * 1.0000001, (e, b)

    def test_prefix_reconstruction(self):
        data = smooth_field()
        r = Refactorer(4)
        obj = r.refactor(data)
        errs = [
            relative_linf_error(data, r.reconstruct(obj, upto=j))
            for j in (1, 2, 3, 4)
        ]
        assert errs == obj.errors

    def test_measure_errors_false_uses_bounds(self):
        data = smooth_field()
        obj = Refactorer(3).refactor(data, measure_errors=False)
        assert obj.errors == obj.bounds

    def test_2d_and_1d(self):
        for shape in [(129,), (65, 65)]:
            rng = np.random.default_rng(1)
            x = np.linspace(0, 1, shape[0])
            data = (
                np.sin(3 * x).astype(np.float64)
                if len(shape) == 1
                else np.outer(np.sin(3 * x), np.cos(2 * x))
            )
            r = Refactorer(3)
            obj = r.refactor(data)
            back = r.reconstruct(obj)
            assert relative_linf_error(data, back) < 1e-5

    def test_float64_input(self):
        data = smooth_field().astype(np.float64)
        obj = Refactorer(2).refactor(data)
        assert obj.dtype == "float64"

    def test_rejects_ints(self):
        with pytest.raises(TypeError):
            Refactorer(2).refactor(np.ones((8, 8), dtype=np.int32))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            Refactorer(2).refactor(np.float64(3.0))

    def test_invalid_num_components(self):
        with pytest.raises(ValueError):
            Refactorer(0)

    def test_reconstruct_upto_validation(self):
        obj = Refactorer(3).refactor(smooth_field(n=17))
        r = Refactorer(3)
        with pytest.raises(ValueError):
            r.reconstruct(obj, upto=0)
        with pytest.raises(ValueError):
            r.reconstruct(obj, upto=5)

    def test_reconstruct_with_explicit_payloads(self):
        data = smooth_field(n=17)
        r = Refactorer(3)
        obj = r.refactor(data)
        back = r.reconstruct(obj, payloads=obj.payloads[:2])
        assert relative_linf_error(data, back) == obj.errors[1]


class TestPolicies:
    def test_per_level_policy(self):
        data = smooth_field(n=17)
        obj = Refactorer(3, policy="per-level", max_levels=2).refactor(data)
        assert len(obj.payloads) == 3
        e = obj.errors
        assert e[0] >= e[-1]

    def test_importance_beats_per_level_at_equal_prefix_size(self):
        """The cross-level reordering should reach lower error per byte —
        the core pMGARD design claim the ablation bench quantifies."""
        data = smooth_field(n=33)
        imp = Refactorer(4, policy="importance").refactor(data)
        # error after ~the first quarter of bytes
        target = sum(imp.sizes) / 4
        acc, j = 0, 0
        while acc < target and j < 3:
            acc += imp.sizes[j]
            j += 1
        assert imp.errors[j - 1] < 0.1

    def test_correction_ablation_runs(self):
        data = smooth_field(n=17)
        obj = Refactorer(3, correction=False).refactor(data)
        r = Refactorer(3, correction=False)
        back = r.reconstruct(obj)
        assert relative_linf_error(data, back) < 1e-4

    def test_size_ratio_controls_skew(self):
        data = smooth_field(n=33)
        steep = Refactorer(4, size_ratio=8.0).refactor(data)
        flat = Refactorer(4, size_ratio=1.5).refactor(data)
        assert steep.sizes[0] <= flat.sizes[0] * 2
        assert (steep.sizes[-1] / steep.sizes[0]) > (
            flat.sizes[-1] / flat.sizes[0]
        )


class TestErrorModel:
    def test_relative_linf_identity(self):
        d = np.array([1.0, -2.0, 3.0])
        assert relative_linf_error(d, d) == 0.0

    def test_relative_linf_zero_reconstruction_is_one(self):
        d = np.array([1.0, -2.0, 3.0])
        assert relative_linf_error(d, np.zeros(3)) == 1.0

    def test_relative_linf_zero_data(self):
        z = np.zeros(3)
        assert relative_linf_error(z, z) == 0.0
        assert relative_linf_error(z, np.ones(3)) == np.inf

    def test_relative_linf_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_linf_error(np.zeros(3), np.zeros(4))

    def test_theoretical_bound_monotone(self):
        ps = [encode_planes(np.random.default_rng(0).normal(size=50), 16)]
        bounds = [theoretical_bound(ps, [k], 10.0) for k in range(17)]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_theoretical_bound_validation(self):
        ps = [encode_planes(np.ones(4), 8)]
        with pytest.raises(ValueError):
            theoretical_bound(ps, [1, 2], 1.0)
        with pytest.raises(ValueError):
            theoretical_bound(ps, [9], 1.0)
        with pytest.raises(ValueError):
            theoretical_bound(ps, [1], 0.0)

    def test_mgard_constant(self):
        assert abs(MGARD_CONSTANT - (1 + np.sqrt(3) / 2)) < 1e-12
