"""Tests for the log-structured KV store, including crash recovery."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata import KVStore


@pytest.fixture
def store(tmp_path):
    with KVStore(tmp_path / "db") as kv:
        yield kv


class TestBasicOps:
    def test_put_get(self, store):
        store.put(b"k1", b"v1")
        assert store.get(b"k1") == b"v1"

    def test_get_missing(self, store):
        assert store.get(b"nope") is None
        assert store.get(b"nope", b"dflt") == b"dflt"

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self, store):
        store.put(b"k", b"v")
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert store.delete(b"k") is False

    def test_contains_len(self, store):
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert b"a" in store
        assert b"z" not in store
        assert len(store) == 2

    def test_scan_prefix(self, store):
        store.put(b"obj/x", b"1")
        store.put(b"obj/y", b"2")
        store.put(b"frag/x", b"3")
        assert store.scan(b"obj/") == [(b"obj/x", b"1"), (b"obj/y", b"2")]
        assert store.keys(b"frag/") == [b"frag/x"]

    def test_empty_value(self, store):
        store.put(b"k", b"")
        assert store.get(b"k") == b""

    def test_binary_safety(self, store):
        key = bytes(range(1, 256))
        val = bytes(range(256)) * 10
        store.put(key, val)
        assert store.get(key) == val

    def test_key_validation(self, store):
        with pytest.raises(ValueError):
            store.put(b"", b"v")
        with pytest.raises(TypeError):
            store.put("str", b"v")
        with pytest.raises(TypeError):
            store.put(b"k", "str")


class TestDurability:
    def test_reopen_preserves_data(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"a", b"1")
            kv.put(b"b", b"2")
            kv.delete(b"a")
        with KVStore(tmp_path / "db") as kv:
            assert kv.get(b"a") is None
            assert kv.get(b"b") == b"2"

    def test_torn_tail_recovery(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"good", b"value")
            seg = kv._segment_path(kv._active_id)
        # Simulate a crash mid-append: write half a record.
        with open(seg, "ab") as fh:
            fh.write(struct.pack("<I", 12345) + b"\x05\x00")
        with KVStore(tmp_path / "db") as kv:
            assert kv.get(b"good") == b"value"
            # torn bytes were truncated; a new write round-trips
            kv.put(b"after", b"crash")
            assert kv.get(b"after") == b"crash"

    def test_corrupt_middle_record_drops_tail_only(self, tmp_path):
        """A flipped bit invalidates that record's CRC; replay stops there
        (Bitcask semantics), keeping every record before it."""
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"first", b"1")
            kv.put(b"second", b"2")
            seg = kv._segment_path(kv._active_id)
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last record's value
        seg.write_bytes(bytes(data))
        with KVStore(tmp_path / "db") as kv:
            assert kv.get(b"first") == b"1"
            assert kv.get(b"second") is None

    def test_segment_rollover(self, tmp_path):
        with KVStore(tmp_path / "db", segment_bytes=1024) as kv:
            for i in range(100):
                kv.put(f"key-{i:03d}".encode(), b"x" * 64)
            assert len(kv._segment_ids()) > 1
            for i in range(100):
                assert kv.get(f"key-{i:03d}".encode()) == b"x" * 64

    def test_reopen_after_rollover(self, tmp_path):
        with KVStore(tmp_path / "db", segment_bytes=1024) as kv:
            for i in range(50):
                kv.put(f"k{i}".encode(), str(i).encode() * 20)
        with KVStore(tmp_path / "db", segment_bytes=1024) as kv:
            for i in range(50):
                assert kv.get(f"k{i}".encode()) == str(i).encode() * 20


class TestCompaction:
    def test_compact_reclaims_space(self, tmp_path):
        with KVStore(tmp_path / "db", segment_bytes=2048) as kv:
            for _ in range(50):
                kv.put(b"hot", b"y" * 100)
            reclaimed = kv.compact()
            assert reclaimed > 0
            assert kv.get(b"hot") == b"y" * 100

    def test_compact_preserves_all_live(self, tmp_path):
        with KVStore(tmp_path / "db", segment_bytes=1024) as kv:
            for i in range(30):
                kv.put(f"k{i}".encode(), f"v{i}".encode())
            kv.delete(b"k0")
            kv.compact()
            assert kv.get(b"k0") is None
            for i in range(1, 30):
                assert kv.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_compact_then_reopen(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"a", b"1")
            kv.put(b"a", b"2")
            kv.compact()
        with KVStore(tmp_path / "db") as kv:
            assert kv.get(b"a") == b"2"


class TestSnapshot:
    def test_snapshot_roundtrip(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            for i in range(25):
                kv.put(f"k{i}".encode(), f"v{i}".encode())
            kv.delete(b"k0")
            count = kv.snapshot(tmp_path / "snap")
            assert count == 24
        with KVStore(tmp_path / "snap") as snap:
            assert snap.get(b"k0") is None
            assert snap.get(b"k7") == b"v7"
            assert len(snap) == 24

    def test_snapshot_is_point_in_time(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"a", b"old")
            kv.snapshot(tmp_path / "snap")
            kv.put(b"a", b"new")
        with KVStore(tmp_path / "snap") as snap:
            assert snap.get(b"a") == b"old"

    def test_snapshot_refuses_nonempty_dest(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"a", b"1")
            kv.snapshot(tmp_path / "snap")
            with pytest.raises(FileExistsError):
                kv.snapshot(tmp_path / "snap")

    def test_restore_from_snapshot(self, tmp_path):
        with KVStore(tmp_path / "db") as kv:
            kv.put(b"a", b"1")
            kv.put(b"b", b"2")
            kv.snapshot(tmp_path / "snap")
        # a "disaster": fresh store, recover from backup
        with KVStore(tmp_path / "db2") as kv2:
            kv2.put(b"c", b"3")
            loaded = kv2.restore_from_snapshot(tmp_path / "snap")
            assert loaded == 2
            assert kv2.get(b"a") == b"1"
            assert kv2.get(b"c") == b"3"  # pre-existing keys survive


@given(
    st.lists(
        st.tuples(
            st.sampled_from([b"k1", b"k2", b"k3", b"k4"]),
            st.one_of(st.binary(max_size=30), st.none()),
        ),
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_store_matches_dict_model(tmp_path_factory, ops):
    """Property: the store behaves exactly like a dict under put/delete."""
    path = tmp_path_factory.mktemp("kv")
    model = {}
    with KVStore(path / "db") as kv:
        for key, val in ops:
            if val is None:
                model.pop(key, None)
                kv.delete(key)
            else:
                model[key] = val
                kv.put(key, val)
        for key in (b"k1", b"k2", b"k3", b"k4"):
            assert kv.get(key) == model.get(key)
    # and survives reopen
    with KVStore(path / "db") as kv:
        for key in (b"k1", b"k2", b"k3", b"k4"):
            assert kv.get(key) == model.get(key)
