"""Tests for the protection planner."""

import pytest

from repro.core.planner import (
    PlanPoint,
    ProtectionPlanner,
    ProtectionRequirement,
)

SIZES = [1e9, 5e9, 2.5e10, 1.25e11]
ERRORS = [4e-3, 5e-4, 6e-5, 1e-7]
S = 6e11


@pytest.fixture
def planner():
    return ProtectionPlanner(16, 0.01, SIZES, ERRORS, S)


class TestRequirement:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProtectionRequirement(0.0)
        with pytest.raises(ValueError):
            ProtectionRequirement(1e-3, max_blackout_probability=0.0)


class TestFrontier:
    def test_frontier_ordered_and_feasible(self, planner):
        pts = planner.frontier()
        assert len(pts) >= 3
        omegas = [p.omega for p in pts]
        assert omegas == sorted(omegas)
        for pt in pts:
            assert pt.solution.overhead <= pt.omega + 1e-9

    def test_quality_improves_with_budget(self, planner):
        pts = planner.frontier()
        errors = [p.solution.expected_error for p in pts]
        assert errors[-1] <= errors[0] * (1 + 1e-9)
        blackout = [p.blackout_probability for p in pts]
        assert blackout[-1] <= blackout[0]

    def test_infeasible_budgets_skipped(self, planner):
        pts = planner.frontier(omegas=[1e-9, 0.5])
        assert len(pts) == 1
        assert pts[0].omega == 0.5

    def test_bad_omega(self, planner):
        with pytest.raises(ValueError):
            planner.frontier(omegas=[-0.1])


class TestRecommend:
    def test_recommend_cheapest(self, planner):
        req = ProtectionRequirement(max_expected_error=1e-5)
        pt = planner.recommend(req)
        assert pt.solution.expected_error <= 1e-5
        # nothing cheaper on the frontier also qualifies
        for other in planner.frontier():
            if other.solution.expected_error <= 1e-5:
                assert pt.solution.overhead <= other.solution.overhead + 1e-12

    def test_blackout_constraint_binds(self, planner):
        loose = planner.recommend(ProtectionRequirement(1e-2))
        strict = planner.recommend(
            ProtectionRequirement(1e-2, max_blackout_probability=1e-12)
        )
        assert strict.blackout_probability <= 1e-12
        assert strict.solution.overhead >= loose.solution.overhead

    def test_unreachable_requirement(self, planner):
        with pytest.raises(ValueError):
            planner.recommend(ProtectionRequirement(1e-30))

    def test_tighter_requirement_never_cheaper(self, planner):
        a = planner.recommend(ProtectionRequirement(1e-3))
        b = planner.recommend(ProtectionRequirement(1e-6))
        assert b.solution.overhead >= a.solution.overhead - 1e-12
