"""Tests for the WAN transfer substrate."""

import numpy as np
import pytest

from repro.transfer import (
    GB,
    MB,
    FairShareSimulator,
    TransferRequest,
    duplication_distribution,
    ec_distribution,
    estimate_bandwidths,
    gathering_requests,
    generate_transfer_logs,
    paper_bandwidth_profile,
    phase_latency,
    refactored_distribution,
    static_transfer_times,
)


class TestLogs:
    def test_generate_deterministic(self):
        r1, m1 = generate_transfer_logs(seed=5)
        r2, m2 = generate_transfer_logs(seed=5)
        assert m1 == m2
        assert [(r.endpoint, r.nbytes) for r in r1[:10]] == [
            (r.endpoint, r.nbytes) for r in r2[:10]
        ]

    def test_estimator_recovers_means(self):
        records, true_means = generate_transfer_logs(
            transfers_per_endpoint=2000, seed=3
        )
        est = estimate_bandwidths(records)
        for ep, mean in true_means.items():
            assert abs(est[ep] - mean) / mean < 0.05

    def test_estimator_empty(self):
        with pytest.raises(ValueError):
            estimate_bandwidths([])

    def test_paper_profile_range(self):
        bw = paper_bandwidth_profile(16)
        assert bw.shape == (16,)
        # §5.1.2: 400 MB/s to more than 3 GB/s (estimates may scatter a bit)
        assert bw.min() > 300 * MB
        assert bw.max() < 4 * GB

    def test_paper_profile_descending_ids(self):
        bw = paper_bandwidth_profile(16)
        # latent means are sorted; estimates approximately follow
        assert bw[0] > bw[-1]

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            generate_transfer_logs(num_endpoints=0)


class TestStaticModel:
    def test_single_request(self):
        res = static_transfer_times(
            [TransferRequest(0, 100.0)], np.array([10.0])
        )
        assert res.finish_times == [10.0]
        assert res.makespan == 10.0

    def test_contention_splits_bandwidth(self):
        reqs = [TransferRequest(0, 100.0), TransferRequest(0, 100.0)]
        res = static_transfer_times(reqs, np.array([10.0]))
        # each request gets 5 B/s under equal share
        assert res.finish_times == [20.0, 20.0]

    def test_independent_systems(self):
        reqs = [TransferRequest(0, 100.0), TransferRequest(1, 100.0)]
        res = static_transfer_times(reqs, np.array([10.0, 20.0]))
        assert res.finish_times == [10.0, 5.0]
        assert res.makespan == 10.0

    def test_empty(self):
        res = static_transfer_times([], np.array([1.0]))
        assert res.makespan == 0.0


class TestFairShareSimulator:
    def test_matches_static_for_equal_sizes(self):
        """With equal sizes on one endpoint, all finish together and the
        static model is exact."""
        reqs = [TransferRequest(0, 50.0)] * 4
        sim = FairShareSimulator(np.array([10.0]))
        res = sim.run(reqs)
        stat = static_transfer_times(reqs, np.array([10.0]))
        np.testing.assert_allclose(res.finish_times, stat.finish_times)

    def test_redistribution_speeds_up_survivor(self):
        """When the small request finishes, the big one gets full bandwidth,
        so it beats the static estimate."""
        reqs = [TransferRequest(0, 10.0), TransferRequest(0, 100.0)]
        sim = FairShareSimulator(np.array([10.0]))
        res = sim.run(reqs)
        # small: 10 / 5 = 2s. big: 2s at 5 B/s -> 90 left at 10 B/s -> 11s.
        np.testing.assert_allclose(res.finish_times, [2.0, 11.0])
        stat = static_transfer_times(reqs, np.array([10.0]))
        assert res.finish_times[1] < stat.finish_times[1]

    def test_conservation(self):
        """Makespan is never below total-bytes / bandwidth (work conservation)."""
        rng = np.random.default_rng(0)
        reqs = [TransferRequest(0, float(s)) for s in rng.uniform(1, 100, 20)]
        sim = FairShareSimulator(np.array([7.0]))
        res = sim.run(reqs)
        np.testing.assert_allclose(res.makespan, sum(r.nbytes for r in reqs) / 7.0)

    def test_client_cap(self):
        reqs = [TransferRequest(0, 100.0), TransferRequest(1, 100.0)]
        capped = FairShareSimulator(
            np.array([10.0, 10.0]), client_bandwidth=10.0
        ).run(reqs)
        uncapped = FairShareSimulator(np.array([10.0, 10.0])).run(reqs)
        assert capped.makespan == pytest.approx(2 * uncapped.makespan)

    def test_zero_byte_request(self):
        res = FairShareSimulator(np.array([1.0])).run([TransferRequest(0, 0.0)])
        assert res.finish_times == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            FairShareSimulator(np.array([0.0]))
        sim = FairShareSimulator(np.array([1.0]))
        with pytest.raises(ValueError):
            sim.run([TransferRequest(5, 1.0)])
        with pytest.raises(ValueError):
            sim.run([TransferRequest(0, -1.0)])


class TestSchedulers:
    bw = np.array([3e9, 2e9, 1e9, 0.5e9])

    def test_duplication_targets_fastest(self):
        reqs = duplication_distribution(1e12, 2, self.bw)
        assert [r.system_id for r in reqs] == [0, 1]
        assert all(r.nbytes == 1e12 for r in reqs)
        with pytest.raises(ValueError):
            duplication_distribution(1e12, 0, self.bw)
        with pytest.raises(ValueError):
            duplication_distribution(1e12, 5, self.bw)

    def test_ec_distribution(self):
        reqs = ec_distribution(1e12, k=3, m=1, bandwidths=self.bw)
        assert len(reqs) == 4
        assert all(r.nbytes == pytest.approx(1e12 / 3) for r in reqs)
        with pytest.raises(ValueError):
            ec_distribution(1e12, 4, 1, self.bw)

    def test_refactored_distribution_aggregated(self):
        """Default: one bundled transfer per destination (Globus batches
        all of an endpoint's files into one task)."""
        reqs = refactored_distribution([90.0, 900.0], [1, 0], 4, self.bw)
        assert len(reqs) == 4
        assert all(r.nbytes == pytest.approx(30.0 + 225.0) for r in reqs)
        assert sorted(r.system_id for r in reqs) == [0, 1, 2, 3]

    def test_refactored_distribution_per_fragment(self):
        reqs = refactored_distribution(
            [90.0, 900.0], [1, 0], 4, self.bw, aggregate=False
        )
        assert len(reqs) == 8
        sizes = sorted({r.nbytes for r in reqs})
        assert sizes == [30.0, 225.0]

    def test_refactored_distribution_validation(self):
        with pytest.raises(ValueError):
            refactored_distribution([1.0], [0, 1], 4, self.bw)
        with pytest.raises(ValueError):
            refactored_distribution([1.0], [4], 4, self.bw)

    def test_gathering_requests(self):
        x = np.zeros((4, 2), dtype=int)
        x[0, 0] = x[1, 0] = x[2, 0] = 1
        x[0, 1] = x[3, 1] = 1
        reqs = gathering_requests(x, [30.0, 40.0], [1, 2])
        assert len(reqs) == 5
        lvl0 = [r for r in reqs if r.tag[1] == 0]
        assert all(r.nbytes == 10.0 for r in lvl0)
        with pytest.raises(ValueError):
            gathering_requests(x, [30.0], [1])

    def test_phase_latency_models_agree_on_singletons(self):
        reqs = [TransferRequest(i, 100.0) for i in range(4)]
        stat = phase_latency(reqs, self.bw, model="static")
        fair = phase_latency(reqs, self.bw, model="fair-share")
        np.testing.assert_allclose(stat.finish_times, fair.finish_times)
        with pytest.raises(ValueError):
            phase_latency(reqs, self.bw, model="bogus")

    def test_ec_beats_duplication_latency(self):
        """The Fig. 3 ordering at the paper's scale: with 16 systems and a
        (12, 4) code, fragment transfers beat shipping a full replica even
        to the fastest endpoint."""
        S = 16e12
        bw = paper_bandwidth_profile(16)
        dp = phase_latency(duplication_distribution(S, 1, bw), bw)
        ec = phase_latency(ec_distribution(S, 12, 4, bw), bw)
        assert ec.makespan < dp.makespan
