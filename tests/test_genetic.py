"""Tests for the GA solver on the gathering problem."""

import numpy as np
import pytest

from repro.optimize import GASolver, GatheringModel, exhaustive_gathering


def small_model(seed=0, available=None):
    rng = np.random.default_rng(seed)
    n = 6
    if available is None:
        available = np.ones(n, dtype=bool)
    return GatheringModel(
        fragment_sizes=np.array([1e9, 8e9]),
        needed=np.array([2, 4]),
        bandwidths=rng.uniform(0.4e9, 3e9, size=n),
        available=np.asarray(available),
    )


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            GASolver(population=2)
        with pytest.raises(ValueError):
            GASolver(elite=0)
        with pytest.raises(ValueError):
            GASolver(elite=64, population=32)
        with pytest.raises(ValueError):
            GASolver(tournament=1)
        with pytest.raises(ValueError):
            GASolver(mutation_rate=1.5)


class TestSolving:
    def test_finds_optimum_on_small_instance(self):
        model = small_model()
        _, opt = exhaustive_gathering(model)
        res = GASolver(seed=0).solve(model, max_generations=60)
        assert res.value == pytest.approx(opt, rel=1e-9)

    def test_population_always_feasible(self):
        avail = np.ones(6, dtype=bool)
        avail[2] = False
        model = small_model(available=avail)
        res = GASolver(seed=1).solve(model, max_generations=20)
        assert model.feasible(res.x)
        assert not res.x[2].any()

    def test_history_monotone(self):
        model = small_model(seed=5)
        res = GASolver(seed=2).solve(model, max_generations=40)
        assert all(a >= b for a, b in zip(res.history, res.history[1:]))

    def test_warm_start_never_worse(self):
        model = small_model()
        warm = model.naive_solution()
        res = GASolver(seed=3).solve(model, warm_start=warm, max_generations=5)
        assert res.value <= model.evaluate(warm) + 1e-9

    def test_deterministic(self):
        model = small_model()
        a = GASolver(seed=7).solve(model, max_generations=15)
        b = GASolver(seed=7).solve(model, max_generations=15)
        assert a.value == b.value
        assert np.array_equal(a.x, b.x)

    def test_time_budget(self):
        model = small_model()
        res = GASolver(seed=4).solve(
            model, time_budget=0.2, max_generations=10**6
        )
        assert res.elapsed < 2.0

    def test_beats_random_baseline(self):
        model = small_model(seed=9)
        rng = np.random.default_rng(0)
        rand_best = min(
            model.evaluate(model.random_solution(rng)) for _ in range(200)
        )
        res = GASolver(seed=5).solve(model, max_generations=40)
        assert res.value <= rand_best + 1e-9

    def test_comparable_to_aco(self):
        """GA and ACO land within 5% of each other at matched budgets —
        the problem, not the metaheuristic, sets the floor."""
        from repro.optimize import ACOSolver

        model = small_model(seed=11)
        ga = GASolver(seed=0).solve(model, max_generations=50)
        aco = ACOSolver(seed=0).solve(model, max_iterations=50)
        assert ga.value == pytest.approx(aco.value, rel=0.05)
