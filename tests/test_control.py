"""Control-plane tests: warm starts, drift detection, live migration.

The two load-bearing guarantees proven here:

* **Warm-start dominance** (property-based): re-solving the FT MINLP
  seeded from an incumbent configuration is never worse than the
  (repaired) incumbent under the drifted parameters, and never worse
  than a cold solve when the evaluation budget allows both.
* **Migration safety**: at every intermediate step of a live
  re-encoding migration — probed via the migrator's checkpoint seam,
  including with up to ``m_j`` concurrent system failures injected
  mid-migration — every level of the object stays recoverable.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.control import (
    DriftPolicy,
    LiveMigrator,
    ReconfigOperator,
    level_recoverable,
    safety_breaches,
)
from repro.control.observer import AvailabilityEstimator, hot_objects, p_drift
from repro.core import RAPIDS, FTProblem, heuristic, repair_configuration, warm_start
from repro.metadata import MetadataCatalog, level_storage_name
from repro.refactor import Refactorer
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


def smooth_field(n=17, seed=0):
    rng = np.random.default_rng(seed)
    ax = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    u = np.zeros([n] * 3)
    for k in (1, 2, 4):
        ph = rng.uniform(0, 2 * np.pi, 3)
        u += (
            np.sin(2 * np.pi * k * ax[0] + ph[0])
            * np.cos(2 * np.pi * k * ax[1] + ph[1])
            * np.sin(2 * np.pi * k * ax[2] + ph[2])
            / k
        )
    return u.astype(np.float32)


@pytest.fixture
def stack(tmp_path):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp_path / "meta")
    rapids = RAPIDS(
        cluster, catalog, refactorer=Refactorer(4, workers=1),
        omega=0.25, ec_workers=1,
    )
    yield rapids
    catalog.close()


# -- problem/incumbent strategies for the property suite -------------------


@st.composite
def problems(draw):
    n = draw(st.integers(6, 16))
    l = draw(st.integers(2, 4))
    # Sizes grow geometrically, errors shrink: the paper's shape.
    s0 = draw(st.floats(1e3, 1e6))
    growth = draw(st.floats(1.5, 6.0))
    sizes = tuple(s0 * growth**j for j in range(l))
    errors = tuple(10.0 ** -(1 + 2 * j) for j in range(l))
    original = sizes[-1] * draw(st.floats(1.0, 4.0))
    omega = draw(st.floats(0.05, 2.0))
    if draw(st.booleans()):
        p = draw(st.floats(1e-3, 0.3))
    else:
        p = tuple(
            draw(st.floats(1e-3, 0.4)) for _ in range(n)
        )
    try:
        return FTProblem(
            n=n, p=p, sizes=sizes, errors=errors,
            original_size=original, omega=omega,
        )
    except ValueError:
        assume(False)


@st.composite
def incumbents(draw, n=16, l=4):
    """An arbitrary (possibly infeasible) parity ladder."""
    return [draw(st.integers(1, n + 2)) for _ in range(l)]


class TestRepairConfiguration:
    @given(problems(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_repair_is_feasible_or_none(self, problem, data):
        ms = data.draw(incumbents(n=problem.n, l=problem.l))
        out = repair_configuration(problem, ms)
        if out is not None:
            assert problem.valid(out)

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_feasible_incumbent_unchanged(self, problem):
        """An already-feasible incumbent survives repair untouched."""
        try:
            inc = heuristic(problem).ms
        except ValueError:
            assume(False)
        assert repair_configuration(problem, inc) == inc

    def test_wrong_level_count_rejected(self):
        problem = FTProblem(
            n=8, p=0.01, sizes=(1e3, 1e4), errors=(1e-2, 1e-4),
            original_size=2e4, omega=1.0,
        )
        assert repair_configuration(problem, [3, 2, 1]) is None


class TestWarmStartDominance:
    @given(problems(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_repaired_incumbent(self, problem, data):
        """The reconfiguration loop's core guarantee: under drifted
        parameters, the warm solution is never worse than the repaired
        incumbent it started from."""
        inc = data.draw(incumbents(n=problem.n, l=problem.l))
        seed = repair_configuration(problem, inc)
        assume(seed is not None)
        warm = warm_start(problem, inc, budget_evals=1)
        assert warm.origin == "warm"
        assert warm.expected_error <= problem.objective(seed) * (1 + 1e-6)
        assert problem.valid(warm.ms)

    @given(problems(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_cold_solve(self, problem, data):
        """With budget to spare, warm_start takes the better of warm and
        cold — so it can never lose to a cold solve."""
        inc = data.draw(incumbents(n=problem.n, l=problem.l))
        try:
            cold = heuristic(problem)
        except ValueError:
            assume(False)
        best = warm_start(problem, inc)
        assert best.expected_error <= cold.expected_error * (1 + 1e-9)

    def test_unrepairable_incumbent_falls_back_cold(self):
        problem = FTProblem(
            n=8, p=0.01, sizes=(1e3, 1e4), errors=(1e-2, 1e-4),
            original_size=2e4, omega=1.0,
        )
        sol = warm_start(problem, [1, 2, 3])  # wrong level count
        assert sol.origin == "cold"
        assert problem.valid(sol.ms)

    def test_budget_counts_evaluations_not_wallclock(self):
        problem = FTProblem(
            n=12, p=0.02, sizes=(1e3, 1e4, 1e5), errors=(1e-2, 1e-4, 1e-6),
            original_size=2e5, omega=1.0,
        )
        inc = heuristic(problem).ms
        tight = warm_start(problem, inc, budget_evals=1)
        loose = warm_start(problem, inc, budget_evals=10**9)
        # A tight budget skips the cold comparison solve entirely.
        assert tight.evaluations < loose.evaluations
        assert tight.ms == loose.ms  # fixpoint incumbent: same answer


class TestDriftObserver:
    def test_estimator_converges_toward_outage_rate(self):
        est = AvailabilityEstimator(4, prior=0.01, alpha=0.3)
        for _ in range(60):
            est.observe([0])  # system 0 always down, others always up
        ps = est.probabilities()
        assert ps[0] == pytest.approx(0.9)  # the default ceiling clamp
        assert all(p < 0.01 for p in ps[1:])

    def test_estimator_clamps(self):
        est = AvailabilityEstimator(2, prior=0.5, alpha=1.0, floor=0.1, ceil=0.8)
        est.observe([0])
        assert est.probabilities() == (0.8, 0.1)

    def test_p_drift_thresholds(self):
        policy = DriftPolicy(p_rel=0.5, p_abs=0.02)
        assert not p_drift(0.01, 0.012, policy)   # within both thresholds
        assert p_drift(0.01, 0.05, policy)        # beyond the absolute floor
        assert not p_drift(0.2, 0.28, policy)     # < 50% relative move
        assert p_drift(0.2, 0.35, policy)

    def test_hot_objects_against_other_objects(self):
        policy = DriftPolicy(hot_factor=4.0, hot_min_accesses=10)
        assert hot_objects({"a": 40, "b": 2, "c": 1}, policy) == ["a"]
        assert hot_objects({"a": 9, "b": 0}, policy) == []   # below min
        assert hot_objects({"a": 40}, policy) == []          # nothing to compare
        assert hot_objects({"a": 12, "b": 11}, policy) == []

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DriftPolicy(p_rel=-0.1)
        with pytest.raises(ValueError):
            DriftPolicy(cooldown_epochs=-1)
        with pytest.raises(ValueError):
            DriftPolicy(estimator_alpha=0.0)


class TestLiveMigration:
    def test_migrate_and_restore_exact(self, stack):
        stack.prepare("obj", smooth_field())
        ref = stack.restore("obj", strategy="naive").data
        rec = stack.catalog.get_object("obj")
        old = [int(m) for m in rec.ft_config]
        new = [m + 1 for m in old]
        report = LiveMigrator(stack).migrate("obj", new)
        assert report.complete and report.migrated == len(old)
        rec = stack.catalog.get_object("obj")
        assert [int(m) for m in rec.ft_config] == new
        assert rec.generations == [1] * len(new)
        out = stack.restore("obj", strategy="naive")
        np.testing.assert_array_equal(out.data, ref)

    def test_migration_is_idempotent(self, stack):
        stack.prepare("obj", smooth_field())
        rec = stack.catalog.get_object("obj")
        new = [int(m) + 1 for m in rec.ft_config]
        LiveMigrator(stack).migrate("obj", new)
        second = LiveMigrator(stack).migrate("obj", new)
        assert second.migrated == 0 and second.deferred == 0
        assert all(s.action == "unchanged" for s in second.steps)

    def test_old_generation_retired(self, stack):
        stack.prepare("obj", smooth_field())
        rec = stack.catalog.get_object("obj")
        new = [int(m) + 1 for m in rec.ft_config]
        LiveMigrator(stack).migrate("obj", new)
        for j in range(len(new)):
            assert stack.cluster.locate("obj", j) == {}
            assert stack.catalog.level_fragments("obj", j) == []
            sname = level_storage_name("obj", 1)
            assert len(stack.cluster.locate(sname, j)) == stack.cluster.n
            assert len(stack.catalog.level_fragments(sname, j)) == stack.cluster.n
            entry = stack.ledger.get("obj", j)
            assert entry.store_name == sname
            assert entry.m == new[j] and entry.headroom == new[j]

    def test_safety_invariant_at_every_checkpoint(self, stack):
        """At each protocol step, every level tolerates up to its
        *current* m_j concurrent failures — probed by actually failing
        that many systems at the migrator's checkpoint seam."""
        stack.prepare("obj", smooth_field())
        ref = stack.restore("obj", strategy="naive").data
        rec = stack.catalog.get_object("obj")
        new = [int(m) + 1 for m in rec.ft_config]
        n = stack.cluster.n
        seen = []

        def probe(stage, level):
            seen.append((stage, level))
            rec_now = stack.catalog.get_object("obj")
            for j, m in enumerate(rec_now.ft_config):
                for failed in (list(range(m)), list(range(n - m, n))):
                    stack.cluster.fail(failed)
                    assert level_recoverable(stack, "obj", j), (
                        stage, level, j, failed
                    )
                    assert safety_breaches(stack, "obj") == []
                    stack.cluster.restore_all()

        report = LiveMigrator(stack).migrate("obj", new, checkpoint=probe)
        assert report.complete
        stages = {s for s, _ in seen}
        assert stages == {"decoded", "staged", "flipped", "retired"}
        out = stack.restore("obj", strategy="naive")
        np.testing.assert_array_equal(out.data, ref)

    def test_faults_injected_mid_migration_then_defer(self, stack):
        """Failing systems *during* one level's migration leaves every
        level recoverable, and makes the next level defer (full
        placement or defer) until the systems return."""
        stack.prepare("obj", smooth_field())
        ref = stack.restore("obj", strategy="naive").data
        rec = stack.catalog.get_object("obj")
        old = [int(m) for m in rec.ft_config]
        new = [m + 1 for m in old]

        def sabotage(stage, level):
            if stage == "flipped" and level == 0:
                # The smallest *current* tolerance across levels is the
                # last level's old m (it has not migrated yet).  That
                # many faults, left in place, stay within every level's
                # tolerance yet block all later levels' staging.
                stack.cluster.fail(list(range(old[-1])))

        report = LiveMigrator(stack).migrate("obj", new, checkpoint=sabotage)
        assert report.steps[0].action == "migrated"
        assert all(s.action == "deferred" for s in report.steps[1:])
        rec = stack.catalog.get_object("obj")
        assert [int(m) for m in rec.ft_config] == [new[0]] + old[1:]
        for j in range(len(old)):
            assert level_recoverable(stack, "obj", j)
        assert safety_breaches(stack, "obj") == []
        # Systems return: the retry completes the remaining levels.
        stack.cluster.restore_all()
        retry = LiveMigrator(stack).migrate("obj", new)
        assert retry.complete
        assert [int(m) for m in stack.catalog.get_object("obj").ft_config] == new
        out = stack.restore("obj", strategy="naive")
        np.testing.assert_array_equal(out.data, ref)

    def test_defers_when_any_system_down(self, stack):
        stack.prepare("obj", smooth_field())
        rec = stack.catalog.get_object("obj")
        new = [int(m) + 1 for m in rec.ft_config]
        stack.cluster.fail([3])
        report = LiveMigrator(stack).migrate("obj", new)
        assert report.migrated == 0
        assert report.deferred == len(new)
        # Old generation untouched.
        rec2 = stack.catalog.get_object("obj")
        assert [int(m) for m in rec2.ft_config] == [int(m) for m in rec.ft_config]
        assert rec2.generations == [0] * len(new)

    def test_procpipe_objects_refused(self, stack):
        stack.prepare("obj", smooth_field())
        rec = stack.catalog.get_object("obj")
        rec.extra["procpipe"] = {"tiled": True}
        stack.catalog.put_object(rec)
        new = [int(m) + 1 for m in rec.ft_config]
        with pytest.raises(ValueError, match="tiled"):
            LiveMigrator(stack).migrate("obj", new)

    def test_invalid_targets_rejected(self, stack):
        stack.prepare("obj", smooth_field())
        mig = LiveMigrator(stack)
        with pytest.raises(ValueError, match="level count"):
            mig.migrate("obj", [5, 4])
        with pytest.raises(ValueError, match="decreasing"):
            mig.migrate("obj", [3, 3, 2, 1])

    def test_migration_charges_wan_transfers(self, stack):
        stack.prepare("obj", smooth_field())
        rec = stack.catalog.get_object("obj")
        new = [int(m) + 1 for m in rec.ft_config]
        report = LiveMigrator(stack).migrate("obj", new)
        assert report.read_bytes > 0
        assert report.written_bytes > report.read_bytes  # n staged vs k read
        assert report.transfer_latency > 0


class TestReconfigOperator:
    def test_no_drift_no_action(self, stack):
        stack.prepare("obj", smooth_field())
        op = ReconfigOperator(stack)
        ev = op.step(0, [])
        assert ev["action"] == "idle" and ev["migrations"] == []

    def test_drift_triggers_reconfigure(self, stack):
        stack.prepare("obj", smooth_field())
        policy = DriftPolicy(p_abs=0.02, cooldown_epochs=0, scrub_every=0)
        op = ReconfigOperator(stack, policy=policy)
        # Hammer the estimator: systems 0-4 down for a stretch.
        for epoch in range(12):
            op.step(epoch, [0, 1, 2, 3, 4] if epoch < 8 else [])
        reconfigs = [e for e in op.events if e["action"] == "reconfigure"]
        assert reconfigs, "drift this large must trigger a re-solve"

    def test_second_pass_plans_zero_moves(self, stack):
        """Idempotence: under unchanged parameters, re-planning returns
        the incumbent and the migrator makes zero moves."""
        stack.prepare("obj", smooth_field())
        op = ReconfigOperator(stack)
        first = op.plan("obj")
        incumbent = [int(m) for m in stack.catalog.get_object("obj").ft_config]
        if list(first.ms) != incumbent:
            assert op.migrator.migrate("obj", list(first.ms)).complete
        second = op.plan("obj")
        assert list(second.ms) == list(first.ms)
        assert second.origin == "warm"
        report = op.migrator.migrate("obj", list(second.ms))
        assert report.migrated == 0 and report.deferred == 0

    def test_cooldown_suppresses_thrash(self, stack):
        stack.prepare("obj", smooth_field())
        policy = DriftPolicy(p_abs=0.01, p_rel=0.1, cooldown_epochs=100)
        op = ReconfigOperator(stack, policy=policy)
        actions = [op.step(e, [0, 1, 2])["action"] for e in range(6)]
        assert actions.count("reconfigure") <= 1
        assert "cooldown" in actions

    def test_hot_object_gets_more_parity(self, stack):
        stack.prepare("hot", smooth_field(seed=1))
        stack.prepare("cold", smooth_field(seed=2))
        before = [int(m) for m in stack.catalog.get_object("hot").ft_config]
        policy = DriftPolicy(
            p_abs=0.5, hot_factor=4.0, hot_min_accesses=10,
            hot_omega_boost=0.5, cooldown_epochs=0,
        )
        op = ReconfigOperator(stack, policy=policy)
        for _ in range(20):
            stack.catalog.record_access("hot")
        ev = op.step(0, [])
        assert ev["action"] == "reconfigure"
        after = [int(m) for m in stack.catalog.get_object("hot").ft_config]
        assert after != before
        assert sum(after) > sum(before)

    def test_heal_on_deficit(self, stack):
        stack.prepare("obj", smooth_field())
        ref = stack.restore("obj", strategy="naive").data
        # Break a fragment and let the scrubber record the deficit.
        from repro.healing import scrub_and_repair

        loc = stack.cluster.locate("obj", 0)
        idx = sorted(loc)[0]
        stack.cluster[loc[idx]].delete("obj", 0, idx)
        scrub_and_repair(
            stack.cluster, stack.catalog, ledger=stack.ledger, repair=False
        )
        assert stack.ledger.deficits()
        op = ReconfigOperator(stack)
        ev = op.step(0, [])
        assert ev["healed"] >= 1
        assert not stack.ledger.deficits()
        out = stack.restore("obj", strategy="naive")
        np.testing.assert_array_equal(out.data, ref)

    def test_periodic_scrub_finds_silent_damage(self, stack):
        stack.prepare("obj", smooth_field())
        loc = stack.cluster.locate("obj", 1)
        idx = sorted(loc)[0]
        stack.cluster[loc[idx]].delete("obj", 1, idx)
        policy = DriftPolicy(p_abs=0.9, scrub_every=4)
        op = ReconfigOperator(stack, policy=policy)
        healed = [op.step(e, [])["healed"] for e in range(5)]
        assert sum(healed) >= 1  # the epoch-4 periodic pass caught it