"""Tests for the multilevel decompose/recompose transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.refactor import transform
from repro.refactor.grid import plan_levels


def _roundtrip(u, correction=True, max_levels=6):
    mallat, plans = transform.decompose(
        u, max_levels=max_levels, correction=correction
    )
    return transform.recompose(mallat, plans, correction=correction), plans


class TestRoundTrip:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 9, 17, 33, 100, 101])
    def test_1d(self, n):
        rng = np.random.default_rng(n)
        u = rng.normal(size=n)
        back, _ = _roundtrip(u)
        np.testing.assert_allclose(back, u, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("shape", [(9, 9), (17, 33), (10, 7), (4, 4)])
    def test_2d(self, shape):
        rng = np.random.default_rng(42)
        u = rng.normal(size=shape)
        back, _ = _roundtrip(u)
        np.testing.assert_allclose(back, u, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("shape", [(9, 9, 9), (17, 8, 5), (6, 6, 6)])
    def test_3d(self, shape):
        rng = np.random.default_rng(7)
        u = rng.normal(size=shape)
        back, _ = _roundtrip(u)
        np.testing.assert_allclose(back, u, rtol=0, atol=1e-10)

    def test_without_correction(self):
        rng = np.random.default_rng(3)
        u = rng.normal(size=(17, 17))
        back, _ = _roundtrip(u, correction=False)
        np.testing.assert_allclose(back, u, rtol=0, atol=1e-10)

    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=3, max_side=20),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, u):
        back, _ = _roundtrip(u)
        scale = max(1.0, float(np.max(np.abs(u))))
        np.testing.assert_allclose(back, u, rtol=0, atol=1e-8 * scale)


class TestStructure:
    def test_mallat_shape_preserved(self):
        u = np.random.default_rng(0).normal(size=(17, 17))
        mallat, plans = transform.decompose(u)
        assert mallat.shape == u.shape

    def test_level_flat_indices_partition(self):
        shape = (17, 9)
        plans = plan_levels(shape, 3)
        groups = transform.level_flat_indices(plans, shape)
        allidx = np.sort(np.concatenate(groups))
        assert allidx.tolist() == list(range(17 * 9))
        # group 0 is the coarsest corner
        assert groups[0].size == int(np.prod(plans[-1].coarse_shape))

    def test_group_sizes_increase(self):
        shape = (65, 65)
        plans = plan_levels(shape, 4)
        groups = transform.level_flat_indices(plans, shape)
        sizes = [g.size for g in groups]
        assert sizes == sorted(sizes)

    def test_smooth_data_has_small_details(self):
        """On a smooth field, detail coefficients are much smaller than
        the coarse approximation — the property RAPIDS exploits."""
        x = np.linspace(0, 1, 65)
        u = np.sin(2 * np.pi * np.outer(x, x))
        mallat, plans = transform.decompose(u)
        groups = transform.level_flat_indices(plans, u.shape)
        flat = mallat.reshape(-1)
        coarse_mag = np.max(np.abs(flat[groups[0]]))
        finest_mag = np.max(np.abs(flat[groups[-1]]))
        assert finest_mag < coarse_mag / 10

    def test_correction_changes_coarse(self):
        u = np.random.default_rng(5).normal(size=33)
        with_c, plans = transform.decompose(u, correction=True)
        without_c, _ = transform.decompose(u, correction=False)
        groups = transform.level_flat_indices(plans, u.shape)
        # detail coefficients identical; coarse values differ
        np.testing.assert_allclose(
            with_c.reshape(-1)[groups[-1]], without_c.reshape(-1)[groups[-1]]
        )
        assert not np.allclose(
            with_c.reshape(-1)[groups[0]], without_c.reshape(-1)[groups[0]]
        )

    def test_l2_correction_improves_coarse_approximation(self):
        """Dropping all detail, the corrected coarse reconstruction should
        have lower L2 error than the uncorrected one (that is the point
        of the projection step)."""
        x = np.linspace(0, 1, 129)
        u = np.sin(4 * np.pi * x) + 0.3 * np.sin(11 * np.pi * x)

        def coarse_only_error(correction):
            mallat, plans = transform.decompose(
                u, max_levels=3, correction=correction
            )
            groups = transform.level_flat_indices(plans, u.shape)
            flat = mallat.reshape(-1).copy()
            for g in groups[1:]:
                flat[g] = 0.0
            back = transform.recompose(
                flat.reshape(u.shape), plans, correction=correction
            )
            return float(np.sqrt(np.mean((back - u) ** 2)))

        assert coarse_only_error(True) < coarse_only_error(False)


class TestAlgebraicProperties:
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=2, min_side=3, max_side=17),
            elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
        ),
        st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, u, alpha):
        """The multilevel transform is linear: T(a*u) == a*T(u)."""
        m1, plans = transform.decompose(u)
        m2, _ = transform.decompose(alpha * u, plans)
        np.testing.assert_allclose(
            m2, alpha * m1, atol=1e-9 * max(1.0, abs(alpha) * np.abs(u).max())
        )

    @given(
        arrays(
            np.float64,
            (9, 9),
            elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
        ),
        arrays(
            np.float64,
            (9, 9),
            elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_additivity(self, u, v):
        """T(u + v) == T(u) + T(v)."""
        mu, plans = transform.decompose(u)
        mv, _ = transform.decompose(v, plans)
        muv, _ = transform.decompose(u + v, plans)
        scale = max(1.0, np.abs(u).max() + np.abs(v).max())
        np.testing.assert_allclose(muv, mu + mv, atol=1e-9 * scale)

    def test_constant_maps_to_coarse_only(self):
        """Constants are reproduced by the coarse basis: every detail
        coefficient vanishes (partition of unity of the hat functions)."""
        u = np.full((17, 17), 3.5)
        mallat, plans = transform.decompose(u)
        groups = transform.level_flat_indices(plans, u.shape)
        flat = mallat.reshape(-1)
        for g in groups[1:]:
            np.testing.assert_allclose(flat[g], 0.0, atol=1e-12)


class TestAxisKernels:
    def test_decompose_axis_reorders(self):
        u = np.arange(9, dtype=np.float64)
        out = transform.decompose_axis(u[None, :], 1)
        # linear data: detail coefficients are exactly zero, and with zero
        # detail the correction is zero so coarse values pass through
        np.testing.assert_allclose(out[0, :5], u[::2])
        np.testing.assert_allclose(out[0, 5:], 0.0, atol=1e-12)

    def test_recompose_axis_inverse(self):
        rng = np.random.default_rng(9)
        u = rng.normal(size=(4, 10))
        fwd = transform.decompose_axis(u, 1)
        back = transform.recompose_axis(fwd, 1, 10)
        np.testing.assert_allclose(back, u, atol=1e-12)

    def test_axis0(self):
        rng = np.random.default_rng(10)
        u = rng.normal(size=(11, 3))
        fwd = transform.decompose_axis(u, 0)
        back = transform.recompose_axis(fwd, 0, 11)
        np.testing.assert_allclose(back, u, atol=1e-12)
