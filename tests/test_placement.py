"""Tests for capacity-aware fragment placement and rebalancing."""

import numpy as np
import pytest

from repro.storage import (
    CapacityError,
    CapacityTracker,
    StorageCluster,
    StoredFragment,
    apply_moves,
    plan_placement,
    rebalance_moves,
)


@pytest.fixture
def tracker():
    cluster = StorageCluster([1e9] * 6)
    caps = np.array([1000.0, 1000.0, 500.0, 500.0, 200.0, 200.0])
    return CapacityTracker(cluster, caps)


class TestTracker:
    def test_validation(self):
        cluster = StorageCluster([1e9] * 3)
        with pytest.raises(ValueError):
            CapacityTracker(cluster, np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            CapacityTracker(cluster, np.array([1.0, 0.0, 2.0]))

    def test_accounting(self, tracker):
        assert np.all(tracker.used() == 0)
        tracker.cluster[0].put(StoredFragment("o", 0, 0, 300, None))
        assert tracker.used()[0] == 300
        assert tracker.free()[0] == 700
        assert tracker.utilization()[0] == pytest.approx(0.3)
        assert tracker.fits(0, 700)
        assert not tracker.fits(0, 701)


class TestPlanPlacement:
    def test_prefers_low_utilisation(self, tracker):
        tracker.cluster[0].put(StoredFragment("o", 0, 0, 900, None))
        chosen = plan_placement(tracker, 100.0, 4)
        assert 0 not in chosen
        assert len(set(chosen)) == 4

    def test_balanced_fill(self, tracker):
        chosen = plan_placement(tracker, 150.0, 6)
        assert sorted(chosen) == list(range(6))

    def test_capacity_exhaustion(self, tracker):
        with pytest.raises(CapacityError):
            plan_placement(tracker, 300.0, 6)  # systems 4/5 hold only 200

    def test_too_many_fragments(self, tracker):
        with pytest.raises(CapacityError):
            plan_placement(tracker, 1.0, 7)

    def test_skips_failed_systems(self, tracker):
        tracker.cluster.fail([0, 1])
        chosen = plan_placement(tracker, 100.0, 4)
        assert not {0, 1} & set(chosen)

    def test_validation(self, tracker):
        with pytest.raises(ValueError):
            plan_placement(tracker, 1.0, 0)

    def test_respects_running_commitments(self, tracker):
        """Within one call, earlier fragments count against later picks."""
        chosen = plan_placement(tracker, 190.0, 6)
        # smallest systems (200 capacity) can only take one fragment each
        assert chosen.count(4) <= 1 and chosen.count(5) <= 1

    def test_exclude(self, tracker):
        chosen = plan_placement(tracker, 100.0, 3, exclude={0, 1})
        assert not {0, 1} & set(chosen)
        with pytest.raises(CapacityError):
            plan_placement(tracker, 100.0, 5, exclude={0, 1})


class TestCommitments:
    def test_pending_counts_as_used(self, tracker):
        tracker.commit(4, 150.0)
        assert tracker.used()[4] == 150.0
        assert not tracker.fits(4, 100.0)  # 200 cap - 150 pending
        assert 4 not in plan_placement(tracker, 100.0, 5)
        tracker.settle(4, 150.0)
        assert tracker.used()[4] == 0.0

    def test_committed_plan_visible_to_next_plan(self, tracker):
        first = plan_placement(tracker, 200.0, 2, commit=True)
        assert set(first) == {0, 1}  # largest systems win a cold start
        # With the reservations registered, the next plan must go
        # elsewhere; without them it would pick 0 and 1 again.
        second = plan_placement(tracker, 100.0, 2)
        assert set(second) == {2, 3}

    def test_clear_commitments(self, tracker):
        plan_placement(tracker, 100.0, 6, commit=True)
        assert tracker.pending.sum() == pytest.approx(600.0)
        tracker.clear_commitments()
        assert tracker.pending.sum() == 0.0


class TestRebalance:
    def test_moves_shrink_spread(self, tracker):
        # pile fragments of distinct levels onto system 0
        for lvl in range(6):
            tracker.cluster[0].put(StoredFragment("obj", lvl, 0, 150, None))
        before = tracker.utilization()
        moves = rebalance_moves(tracker, max_moves=10)
        assert moves
        srcs = {m[1] for m in moves}
        assert srcs == {0}
        # execute the proposals (settling their commitments) and verify
        # the spread shrank
        assert apply_moves(tracker, moves) == len(moves)
        after = tracker.utilization()
        assert after.max() - after.min() < before.max() - before.min()

    def test_no_moves_when_balanced(self, tracker):
        for sid in range(6):
            tracker.cluster[sid].put(
                StoredFragment("obj", sid, 0, int(tracker.capacities[sid] * 0.1), None)
            )
        assert rebalance_moves(tracker, threshold=0.05) == []

    def test_one_fragment_per_level_per_system(self, tracker):
        # two fragments of the SAME level on system 0: the rule forbids
        # moving one onto a system already hosting that level
        tracker.cluster[0].put(StoredFragment("obj", 0, 0, 150, None))
        tracker.cluster[0].put(StoredFragment("obj", 0, 1, 150, None))
        for sid in range(1, 6):
            tracker.cluster[sid].put(StoredFragment("obj", 0, sid + 1, 10, None))
        moves = rebalance_moves(tracker, max_moves=5)
        for key, src, dst in moves:
            hosted = {
                (f.object_name, f.level)
                for f in tracker.cluster[dst]._store.values()
            }
            assert (key[0], key[1]) not in hosted

    def test_max_moves_bound(self, tracker):
        for lvl in range(6):
            tracker.cluster[0].put(StoredFragment("obj", lvl, 0, 150, None))
        assert len(rebalance_moves(tracker, max_moves=2)) <= 2
        with pytest.raises(ValueError):
            rebalance_moves(tracker, max_moves=-1)

    def test_proposals_register_commitments(self, tracker):
        for lvl in range(6):
            tracker.cluster[0].put(StoredFragment("obj", lvl, 0, 150, None))
        moves = rebalance_moves(tracker, max_moves=10)
        assert moves
        pend = tracker.pending
        assert pend[0] < 0  # the donor sheds planned bytes...
        assert pend.sum() == pytest.approx(0.0)  # ...that receivers gain
        # mid-plan accounting sees the reservations, not just resident
        # bytes: the donor's projected load already excludes the moves.
        assert tracker.used()[0] == pytest.approx(900.0 + pend[0])
        assert apply_moves(tracker, moves) == len(moves)
        assert np.all(tracker.pending == 0.0)

    def test_unavailable_systems_neither_donate_nor_receive(self, tracker):
        for lvl in range(6):
            tracker.cluster[0].put(StoredFragment("obj", lvl, 0, 150, None))
        tracker.cluster.fail([0])
        # the only hot system is down: nothing to plan, no stall
        assert rebalance_moves(tracker, max_moves=10) == []
        tracker.cluster.restore_all()
        tracker.cluster.fail([1])
        moves = rebalance_moves(tracker, max_moves=10)
        assert moves
        assert all(dst != 1 for _, _, dst in moves)


class TestApplyMoves:
    def test_failed_read_skips_move_and_keeps_reservation(self, tracker):
        for lvl in range(6):
            tracker.cluster[0].put(StoredFragment("obj", lvl, 0, 150, None))
        moves = rebalance_moves(tracker, max_moves=10)
        assert len(moves) >= 2
        lost_key, lost_src, lost_dst = moves[0]
        tracker.cluster[lost_src].delete(*lost_key)
        applied = apply_moves(tracker, moves)
        assert applied == len(moves) - 1
        # the skipped move's reservation stays until the planner ends
        # the session
        assert tracker.pending[lost_dst] == pytest.approx(150.0)
        tracker.clear_commitments()
        assert np.all(tracker.pending == 0.0)

    def test_catalog_follows_moves(self, tracker, tmp_path):
        from repro.metadata import FragmentRecord, MetadataCatalog

        with MetadataCatalog(tmp_path / "meta") as catalog:
            for lvl in range(6):
                tracker.cluster[0].put(
                    StoredFragment("obj", lvl, 0, 150, None)
                )
                catalog.put_fragment(
                    FragmentRecord("obj", lvl, 0, 0, 150, checksum=0)
                )
            moves = rebalance_moves(tracker, max_moves=10)
            assert apply_moves(tracker, moves, catalog=catalog) == len(moves)
            for (obj, lvl, idx), _src, dst in moves:
                assert catalog.get_fragment(obj, lvl, idx).system_id == dst
                assert tracker.cluster[dst].has(obj, lvl, idx)
                assert not tracker.cluster[0].has(obj, lvl, idx)
