"""Tests for error-controlled retrieval (progressive, adaptable access)."""

import numpy as np
import pytest

from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import (
    Refactorer,
    RetrievalPlan,
    bytes_for_error,
    components_for_error,
    relative_linf_error,
)
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


@pytest.fixture(scope="module")
def obj():
    x = np.linspace(0, 1, 49)
    field = (
        np.sin(4 * np.pi * x)[:, None, None]
        * np.cos(2 * np.pi * x)[None, :, None]
        * np.sin(6 * np.pi * x)[None, None, :]
    ).astype(np.float32)
    return Refactorer(4, num_planes=24).refactor(field), field


class TestComponentsForError:
    def test_loose_target_needs_few(self, obj):
        o, _ = obj
        assert components_for_error(o, 1.0) == 1

    def test_exact_boundaries(self, obj):
        o, _ = obj
        for j, err in enumerate(o.errors, start=1):
            assert components_for_error(o, err) == j

    def test_tight_target_needs_all(self, obj):
        o, _ = obj
        tight = (o.errors[-1] + o.errors[-2]) / 2
        assert components_for_error(o, tight) == o.num_components

    def test_unreachable_raises(self, obj):
        o, _ = obj
        with pytest.raises(ValueError, match="below the full"):
            components_for_error(o, o.errors[-1] / 10 if o.errors[-1] > 0 else 1e-300)

    def test_invalid_target(self, obj):
        o, _ = obj
        with pytest.raises(ValueError):
            components_for_error(o, 0.0)

    def test_bounds_are_conservative(self, obj):
        o, _ = obj
        for target in (1e-1, 1e-2):
            j_bound = components_for_error(o, target, use_bounds=True)
            j_meas = components_for_error(o, target)
            assert j_bound >= j_meas

    def test_reconstruction_actually_meets_target(self, obj):
        o, field = obj
        r = Refactorer(4, num_planes=24)
        for target in (1e-1, 1e-2, 1e-3):
            j = components_for_error(o, target)
            back = r.reconstruct(o, upto=j)
            assert relative_linf_error(field, back) <= target


class TestRetrievalPlan:
    def test_frontier_monotone(self, obj):
        o, _ = obj
        plan = RetrievalPlan.for_object(o)
        nbytes = [b for b, _ in plan.points]
        errs = [e for _, e in plan.points]
        assert nbytes == sorted(nbytes)
        assert errs == sorted(errs, reverse=True)

    def test_budget_lookups(self, obj):
        o, _ = obj
        plan = RetrievalPlan.for_object(o)
        assert plan.error_at_budget(0) == 1.0
        assert plan.error_at_budget(plan.total_bytes) == plan.floor_error
        mid_budget = plan.points[1][0]
        assert plan.error_at_budget(mid_budget) == plan.points[1][1]

    def test_budget_for_error(self, obj):
        o, _ = obj
        plan = RetrievalPlan.for_object(o)
        assert plan.budget_for_error(1.0) == plan.points[0][0]
        with pytest.raises(ValueError):
            plan.budget_for_error(plan.floor_error / 1e6 if plan.floor_error else 1e-300)

    def test_savings(self, obj):
        o, _ = obj
        plan = RetrievalPlan.for_object(o)
        loose = plan.savings_vs_full(plan.points[0][1])
        assert 0.5 < loose < 1.0  # first component is a tiny fraction
        assert plan.savings_vs_full(plan.floor_error) == 0.0

    def test_bytes_for_error_consistency(self, obj):
        o, _ = obj
        plan = RetrievalPlan.for_object(o)
        target = o.errors[1]
        assert bytes_for_error(o, target) == plan.budget_for_error(target)


class TestPipelineTargetError:
    def test_target_error_reduces_gathering(self, tmp_path):
        from repro.datasets import scale_pressure

        data = scale_pressure((33, 33, 33))
        cluster = StorageCluster(paper_bandwidth_profile(16))
        with MetadataCatalog(tmp_path / "meta") as catalog:
            rapids = RAPIDS(cluster, catalog, omega=0.3)
            prep = rapids.prepare("obj", data)
            full = rapids.restore("obj", strategy="naive")
            loose = rapids.restore(
                "obj", strategy="naive", target_error=prep.level_errors[0]
            )
            assert loose.levels_used == 1
            assert full.levels_used == 4
            assert loose.gathering_latency < full.gathering_latency
            err = relative_linf_error(data, loose.data)
            assert err <= prep.level_errors[0]

    def test_target_error_validation(self, tmp_path):
        from repro.datasets import scale_pressure

        cluster = StorageCluster(paper_bandwidth_profile(16))
        with MetadataCatalog(tmp_path / "meta") as catalog:
            rapids = RAPIDS(cluster, catalog)
            rapids.prepare("obj", scale_pressure((17, 17, 17)))
            with pytest.raises(ValueError):
                rapids.restore("obj", target_error=-1.0)

    def test_unreachable_target_uses_everything(self, tmp_path):
        """A target below the floor still restores the best available."""
        from repro.datasets import scale_pressure

        cluster = StorageCluster(paper_bandwidth_profile(16))
        with MetadataCatalog(tmp_path / "meta") as catalog:
            rapids = RAPIDS(cluster, catalog)
            rapids.prepare("obj", scale_pressure((17, 17, 17)))
            res = rapids.restore("obj", strategy="naive", target_error=1e-300)
            assert res.levels_used == 4
