"""Direct unit tests for the fragment-level ErasureCodec API."""

import numpy as np
import pytest

from repro.ec import ECConfig, ErasureCodec


class TestECConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ECConfig(4, 4)
        with pytest.raises(ValueError):
            ECConfig(4, -1)

    def test_derived_quantities(self):
        cfg = ECConfig(16, 4)
        assert cfg.k == 12
        assert cfg.storage_expansion == pytest.approx(16 / 12)
        assert cfg.fragment_size(1200.0) == pytest.approx(100.0)
        assert cfg.parity_overhead(1200.0) == pytest.approx(400.0)


class TestErasureCodec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErasureCodec(1)
        with pytest.raises(ValueError):
            ErasureCodec(300)

    def test_encode_decode_level(self):
        codec = ErasureCodec(8)
        payload = np.random.default_rng(0).bytes(500)
        enc = codec.encode_level(payload, m=3, level_index=2)
        assert len(enc.fragments) == 8
        assert enc.level_index == 2
        assert enc.payload_size == 500
        assert enc.fragment_nbytes > 0
        assert codec.decode_level(enc) == payload

    def test_decode_from_fragment_map(self):
        codec = ErasureCodec(8)
        payload = b"level payload" * 20
        enc = codec.encode_level(payload, m=3)
        subset = {i: enc.fragments[i] for i in (0, 2, 4, 5, 7)}
        out = codec.decode_level(config=enc.config, fragments=subset)
        assert out == payload

    def test_decode_requires_args(self):
        codec = ErasureCodec(4)
        with pytest.raises(ValueError):
            codec.decode_level()

    def test_decode_insufficient(self):
        codec = ErasureCodec(6)
        enc = codec.encode_level(b"x" * 60, m=2)
        with pytest.raises(ValueError):
            codec.decode_level(
                config=enc.config,
                fragments={0: enc.fragments[0], 1: enc.fragments[1]},
            )

    def test_repair_fragment(self):
        codec = ErasureCodec(6)
        enc = codec.encode_level(bytes(range(100)), m=2)
        available = {i: enc.fragments[i] for i in (0, 1, 3, 5)}
        for target in range(6):
            rebuilt = codec.repair_fragment(enc.config, available, target)
            assert np.array_equal(rebuilt, enc.fragments[target])

    def test_numpy_payload(self):
        codec = ErasureCodec(5)
        arr = np.arange(64, dtype=np.float32)
        enc = codec.encode_level(arr.tobytes(), m=2)
        assert enc.payload_size == arr.nbytes
        back = np.frombuffer(codec.decode_level(enc), dtype=np.float32)
        np.testing.assert_array_equal(back, arr)

    def test_zero_parity_level(self):
        codec = ErasureCodec(4)
        enc = codec.encode_level(b"no redundancy", m=0)
        assert len(enc.fragments) == 4
        assert codec.decode_level(enc) == b"no redundancy"

    def test_codes_cached(self):
        from repro.ec.codec import _code

        a = _code(4, 2)
        b = _code(4, 2)
        assert a is b
