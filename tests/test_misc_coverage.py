"""Direct tests for small public utilities exercised only indirectly
elsewhere: timing helpers, corruption-detection on read, log records."""

import numpy as np
import pytest

from repro.ec import gf256
from repro.metadata import CorruptionError, KVStore
from repro.parallel import measure_rate
from repro.transfer.logs import TransferRecord


class TestMeasureRate:
    def test_measures_throughput(self):
        calls = []

        def work():
            calls.append(1)
            sum(range(50_000))

        rate = measure_rate(work, nbytes=10_000, repeats=3)
        assert rate > 0
        assert len(calls) == 3

    def test_repeats_take_best(self):
        import time

        durations = iter([0.02, 0.001])

        def work():
            time.sleep(next(durations))

        fast = measure_rate(work, nbytes=1000, repeats=2)
        assert fast > 1000 / 0.05  # the best (second) run dominates


class TestCorruptionErrorOnRead:
    def test_in_place_corruption_detected_at_get(self, tmp_path):
        """If a record rots on disk *after* the index was built, get()
        must raise CorruptionError rather than return garbage."""
        kv = KVStore(tmp_path / "db")
        try:
            kv.put(b"key", b"value-that-will-rot")
            seg_id, off, rec_len = kv._index[b"key"]
            path = kv._segment_path(seg_id)
            data = bytearray(path.read_bytes())
            data[off + rec_len - 3] ^= 0xFF  # flip a byte inside the value
            # rewrite the file under the open handles
            with open(path, "r+b") as fh:
                fh.seek(0)
                fh.write(bytes(data))
            with pytest.raises(CorruptionError):
                kv.get(b"key")
        finally:
            kv.close()


class TestTransferRecord:
    def test_throughput(self):
        rec = TransferRecord("gcs-00", nbytes=10**9, start_time=0.0,
                             elapsed_seconds=2.0)
        assert rec.throughput == pytest.approx(5e8)


class TestGF256Constants:
    def test_field_constants(self):
        assert gf256.FIELD_SIZE == 256
        assert gf256.PRIMITIVE_POLY == 0x11B
        assert gf256.GENERATOR == 3
        assert len(gf256.EXP_TABLE) == 510
        assert len(gf256.LOG_TABLE) == 256
