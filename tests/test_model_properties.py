"""Property-based tests of the optimisation models' structural invariances.

These pin down symmetries the models must satisfy by construction —
the kind of invariant that catches silent indexing bugs refactors
introduce: bandwidth scaling, system relabeling, level ordering, and
monotonicity of the availability math.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import expected_relative_error
from repro.optimize import GatheringModel


def make_model(bw, needed=(2, 4), sizes=(1e9, 8e9), objective="average"):
    bw = np.asarray(bw, dtype=np.float64)
    return GatheringModel(
        fragment_sizes=np.asarray(sizes, dtype=np.float64),
        needed=np.asarray(needed),
        bandwidths=bw,
        available=np.ones(len(bw), dtype=bool),
        objective=objective,
    )


bw_st = st.lists(
    st.floats(1e8, 5e9, allow_nan=False), min_size=6, max_size=10
)


class TestGatheringInvariances:
    @given(bw_st, st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_scaling_inverse(self, bw, alpha):
        """Scaling every bandwidth by alpha scales every objective by
        1/alpha (time = bytes / rate)."""
        m1 = make_model(bw)
        m2 = make_model([b * alpha for b in bw])
        x = m1.naive_solution()
        assert m2.evaluate(x) == pytest.approx(m1.evaluate(x) / alpha, rel=1e-9)

    @given(bw_st, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_system_relabeling_equivariance(self, bw, rnd):
        """Permuting system labels permutes selections, not objectives."""
        perm = list(range(len(bw)))
        rnd.shuffle(perm)
        m1 = make_model(bw)
        m2 = make_model([bw[p] for p in perm])
        x = m1.random_solution(np.random.default_rng(0))
        x_perm = np.zeros_like(x)
        for new_i, old_i in enumerate(perm):
            x_perm[new_i] = x[old_i]
        assert m2.evaluate(x_perm) == pytest.approx(m1.evaluate(x), rel=1e-9)

    @given(bw_st)
    @settings(max_examples=30, deadline=None)
    def test_fragment_size_linearity(self, bw):
        """Doubling every fragment size doubles every transfer time."""
        m1 = make_model(bw, sizes=(1e9, 8e9))
        m2 = make_model(bw, sizes=(2e9, 16e9))
        x = m1.naive_solution()
        assert m2.evaluate(x) == pytest.approx(2 * m1.evaluate(x), rel=1e-9)

    @given(bw_st)
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_least_average(self, bw):
        ma = make_model(bw, objective="average")
        mm = make_model(bw, objective="makespan")
        x = ma.naive_solution()
        assert mm.evaluate(x) >= ma.evaluate(x) - 1e-9


class TestAvailabilityInvariances:
    @given(
        st.floats(1e-4, 0.3),
        st.integers(min_value=10, max_value=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_bounded_by_extremes(self, p, n):
        """E[err] always lies between e_l and e0 = 1."""
        ms = [min(n - 1, 8), 5, 3, 1]
        ms = sorted(set(ms), reverse=True)
        errors = [4e-3 * 10 ** (-1.2 * j) for j in range(len(ms))]
        e = expected_relative_error(n, p, ms, errors)
        assert errors[-1] <= e <= 1.0

    @given(st.floats(1e-4, 0.2), st.floats(1e-4, 0.2))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_p(self, p1, p2):
        """Higher outage probability never improves the expected error."""
        lo, hi = sorted((p1, p2))
        ms = [8, 5, 4, 2]
        errors = [4e-3, 5e-4, 6e-5, 1e-7]
        assert expected_relative_error(16, lo, ms, errors) <= (
            expected_relative_error(16, hi, ms, errors) + 1e-15
        )

    def test_p_zero_and_one_limits(self):
        ms = [8, 5, 4, 2]
        errors = [4e-3, 5e-4, 6e-5, 1e-7]
        assert expected_relative_error(16, 0.0, ms, errors) == pytest.approx(
            errors[-1]
        )
        assert expected_relative_error(16, 1.0, ms, errors) == pytest.approx(1.0)
