"""Tests for the Globus-like transfer service façade."""

import numpy as np
import pytest

from repro.transfer.globus import GlobusService, TaskStatus


@pytest.fixture
def svc():
    return GlobusService(np.array([10.0, 20.0, 5.0]), seed=0)


class TestSubmission:
    def test_submit_and_wait(self, svc):
        tid = svc.submit(0, 1, 100.0, label="frag0")
        assert svc.status(tid) is TaskStatus.ACTIVE
        assert svc.wait(tid) is TaskStatus.SUCCEEDED
        assert svc.clock == pytest.approx(10.0)

    def test_zero_byte_task(self, svc):
        tid = svc.submit(0, 1, 0.0)
        assert svc.status(tid) is TaskStatus.SUCCEEDED

    def test_validation(self, svc):
        with pytest.raises(ValueError):
            svc.submit(9, 0, 1.0)
        with pytest.raises(ValueError):
            svc.submit(0, 9, 1.0)
        with pytest.raises(ValueError):
            svc.submit(0, 1, -1.0)
        with pytest.raises(KeyError):
            svc.status("task-999999")
        with pytest.raises(ValueError):
            GlobusService(np.array([0.0]))
        with pytest.raises(ValueError):
            svc.advance(-1.0)

    def test_source_contention_slows_tasks(self, svc):
        a = svc.submit(0, 1, 100.0)
        b = svc.submit(0, 2, 100.0)
        # second task submitted while the first is active: half share
        svc.wait_all()
        assert svc.tasks[a].completes_at == pytest.approx(10.0)
        assert svc.tasks[b].completes_at == pytest.approx(20.0)

    def test_event_log(self, svc):
        tid = svc.submit(0, 1, 50.0, label="x")
        svc.wait(tid)
        assert any("SUBMIT" in e for e in svc.events)
        assert any("SUCCEEDED" in e for e in svc.events)


class TestControl:
    def test_cancel_active(self, svc):
        tid = svc.submit(0, 1, 1000.0)
        assert svc.cancel(tid) is True
        assert svc.status(tid) is TaskStatus.CANCELED

    def test_cancel_finished(self, svc):
        tid = svc.submit(0, 1, 10.0)
        svc.wait(tid)
        assert svc.cancel(tid) is False

    def test_advance_settles(self, svc):
        tid = svc.submit(0, 1, 100.0)
        svc.advance(5.0)
        assert svc.status(tid) is TaskStatus.ACTIVE
        svc.advance(5.0)
        assert svc.status(tid) is TaskStatus.SUCCEEDED

    def test_wait_all(self, svc):
        for dst in (1, 2):
            svc.submit(0, dst, 100.0)
        clock = svc.wait_all()
        assert clock == pytest.approx(20.0)
        assert svc.active_tasks() == []


class TestFailures:
    def test_failed_tasks_reported(self):
        svc = GlobusService(np.array([10.0, 10.0]), failure_prob=0.5, seed=1)
        outcomes = set()
        for _ in range(20):
            tid = svc.submit(0, 1, 10.0)
            outcomes.add(svc.wait(tid))
        assert TaskStatus.FAILED in outcomes
        assert TaskStatus.SUCCEEDED in outcomes

    def test_distribution_workflow(self, svc):
        """The §4.2 orchestration loop: submit all fragments, poll,
        retry failures to an alternate destination."""
        svc = GlobusService(np.array([10.0, 10.0, 10.0, 10.0]),
                            failure_prob=0.3, seed=2)
        pending = {
            svc.submit(0, dst, 50.0, label=f"frag->{dst}"): dst
            for dst in (1, 2, 3)
        }
        delivered = set()
        for attempt in range(10):
            svc.wait_all()
            retry = {}
            for tid, dst in pending.items():
                if svc.status(tid) is TaskStatus.SUCCEEDED:
                    delivered.add(dst)
                elif svc.status(tid) is TaskStatus.FAILED:
                    retry[svc.submit(0, dst, 50.0, label="retry")] = dst
            pending = retry
            if not pending:
                break
        assert delivered == {1, 2, 3}
