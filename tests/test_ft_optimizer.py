"""Tests for the fault-tolerance configuration optimiser (§3.2, Alg. 1)."""

import numpy as np
import pytest

from repro.core import FTProblem, brute_force, heuristic, initial_configuration


def make_problem(n=16, omega=0.25, l=4, ratio=5.0, p=0.01):
    sizes = tuple(1e9 * ratio**j for j in range(l))
    errors = tuple(4e-3 * 10.0 ** (-1.2 * j) for j in range(l))
    S = sum(sizes) * 4
    return FTProblem(
        n=n, p=p, sizes=sizes, errors=errors, original_size=S, omega=omega
    )


class TestProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(n=4)  # n <= l
        with pytest.raises(ValueError):
            make_problem(omega=0.0)
        with pytest.raises(ValueError):
            FTProblem(8, 0.01, (1.0,), (0.1, 0.2), 10.0, 0.5)

    def test_valid_config(self):
        prob = make_problem()
        assert prob.valid([4, 3, 2, 1])
        assert not prob.valid([3, 3, 2, 1])  # not strictly decreasing
        assert not prob.valid([16, 3, 2, 1])  # m1 >= n
        assert not prob.valid([4, 3, 2, 0])  # m_l < 1
        assert not prob.valid([4, 3, 2])  # wrong length

    def test_overhead_and_objective(self):
        prob = make_problem()
        ms = [4, 3, 2, 1]
        assert prob.overhead(ms) > 0
        assert 0 <= prob.objective(ms) <= 1


class TestInitializer:
    def test_tight_ladder(self):
        prob = make_problem(omega=1.0)
        ladder = initial_configuration(prob)
        l = prob.l
        assert ladder == [ladder[-1] + l - 1 - j for j in range(l)]
        assert prob.valid(ladder)

    def test_maximal(self):
        """The m*+1 ladder must violate the budget (maximality of Eq. 9)."""
        prob = make_problem(omega=0.3)
        ladder = initial_configuration(prob)
        bumped = [m + 1 for m in ladder]
        if bumped[0] < prob.n:
            assert prob.overhead(bumped) > prob.omega

    def test_infeasible_budget(self):
        prob = make_problem(omega=1e-6)
        with pytest.raises(ValueError):
            initial_configuration(prob)

    def test_ladder_error_not_beaten_by_low_ml(self):
        """Eq. 9's pruning claim, under the pure-error objective: no
        configuration with m_l < m* achieves a strictly lower expected
        error than the best configuration with m_l >= m*.  (Under the
        (error, overhead) tie-break the *reported* optimum may still have
        a smaller m_l, because parity above the numerical-resolution
        plateau gets pruned for its overhead.)"""
        import itertools

        prob = make_problem(omega=0.4)
        ladder = initial_configuration(prob)
        m_star = ladder[-1]
        best_low, best_high = float("inf"), float("inf")
        for combo in itertools.combinations(range(prob.n - 1, 0, -1), prob.l):
            ms = list(combo)
            if prob.overhead(ms) > prob.omega:
                continue
            val = prob.objective(ms)
            if ms[-1] < m_star:
                best_low = min(best_low, val)
            else:
                best_high = min(best_high, val)
        assert best_high <= best_low * (1 + 1e-9)


class TestSolvers:
    def test_brute_force_feasible(self):
        prob = make_problem()
        sol = brute_force(prob)
        assert prob.valid(sol.ms)
        assert sol.overhead <= prob.omega + 1e-9

    def test_brute_force_infeasible(self):
        with pytest.raises(ValueError):
            brute_force(make_problem(omega=1e-9))

    def test_heuristic_matches_brute_force_table3_style(self):
        """The Table 3 claim: identical optimal configurations."""
        for n, omega in [(16, 0.15), (16, 0.3), (20, 0.25), (12, 0.4),
                         (16, 0.08), (24, 0.5)]:
            prob = make_problem(n=n, omega=omega)
            bf = brute_force(prob)
            h = heuristic(prob)
            assert h.ms == bf.ms, (n, omega, h.ms, bf.ms)
            assert h.expected_error == pytest.approx(bf.expected_error, rel=1e-9)

    def test_heuristic_matches_on_random_instances(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(8, 22))
            ratio = float(rng.uniform(2.5, 8))
            omega = float(rng.uniform(0.05, 0.6))
            try:
                prob = make_problem(n=n, omega=omega, ratio=ratio)
                bf = brute_force(prob)
                h = heuristic(prob)
            except ValueError:
                continue
            assert h.ms == bf.ms, (n, omega, ratio)

    def test_heuristic_far_fewer_evaluations(self):
        prob = make_problem(n=24, omega=0.4)
        bf = brute_force(prob)
        h = heuristic(prob)
        assert bf.evaluations / h.evaluations > 10

    def test_heuristic_respects_budget(self):
        prob = make_problem(omega=0.12)
        sol = heuristic(prob)
        assert sol.overhead <= prob.omega + 1e-9

    def test_heuristic_explicit_initial(self):
        prob = make_problem()
        sol = heuristic(prob, initial=[4, 3, 2, 1])
        assert prob.valid(sol.ms)
        with pytest.raises(ValueError):
            heuristic(prob, initial=[1, 2, 3, 4])

    def test_tighter_budget_never_better(self):
        tight = heuristic(make_problem(omega=0.05))
        loose = heuristic(make_problem(omega=0.5))
        assert loose.expected_error <= tight.expected_error * (1 + 1e-9)

    def test_two_level_problem(self):
        prob = make_problem(l=2)
        assert heuristic(prob).ms == brute_force(prob).ms

    def test_single_level_problem(self):
        prob = make_problem(l=1)
        assert heuristic(prob).ms == brute_force(prob).ms


class TestHeterogeneousProblem:
    """FTProblem with a per-system probability vector (Poisson-binomial)."""

    def _hetero(self, ps, omega=0.3):
        return FTProblem(
            n=len(ps), p=tuple(ps),
            sizes=tuple(1e9 * 5.0**j for j in range(4)),
            errors=tuple(4e-3 * 10.0 ** (-1.2 * j) for j in range(4)),
            original_size=sum(1e9 * 5.0**j for j in range(4)) * 4,
            omega=omega,
        )

    def test_uniform_vector_matches_scalar(self):
        vec = self._hetero([0.01] * 16)
        scalar = make_problem(n=16, omega=0.3)
        ms = [8, 5, 4, 2]
        assert vec.objective(ms) == pytest.approx(
            scalar.objective(ms), rel=1e-12
        )
        assert brute_force(vec).ms == brute_force(scalar).ms

    def test_heuristic_matches_brute_force_hetero(self):
        rng = np.random.default_rng(5)
        for _ in range(8):
            ps = rng.uniform(0.005, 0.08, size=16)
            prob = self._hetero(ps)
            assert heuristic(prob).ms == brute_force(prob).ms

    def test_mixed_fleet_gets_more_parity(self):
        """A fleet with unreliable facilities earns deeper protection
        than the uniform-reliable assumption chooses."""
        uniform = brute_force(self._hetero([0.0107] * 16))
        mixed = brute_force(self._hetero([0.0107] * 8 + [0.052] * 8))
        assert sum(mixed.ms) >= sum(uniform.ms)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FTProblem(
                n=16, p=(0.01,) * 8,
                sizes=(1e9, 5e9), errors=(1e-2, 1e-3),
                original_size=1e11, omega=0.3,
            )

    def test_delta_consistency(self):
        """error_delta must equal the full objective difference."""
        prob = self._hetero([0.0107] * 8 + [0.052] * 8)
        ms = [8, 5, 4, 2]
        for x in range(4):
            cand = list(ms)
            cand[x] += 1
            if x > 0 and cand[x] >= ms[x - 1]:
                continue
            delta = prob.error_delta(ms, x)
            assert prob.objective(cand) - prob.objective(ms) == pytest.approx(
                delta, rel=1e-9, abs=1e-18
            )
