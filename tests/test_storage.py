"""Tests for the geo-distributed storage substrate."""

import numpy as np
import pytest

from repro.storage import (
    BernoulliFailureModel,
    CorrelatedFailureModel,
    MaintenanceSchedule,
    StorageCluster,
    StoredFragment,
    UnavailableError,
    exact_k_failures,
)


@pytest.fixture
def cluster():
    return StorageCluster([1e9] * 8)


class TestStorageSystem:
    def test_put_get(self, cluster):
        frag = StoredFragment("obj", 0, 3, 5, b"hello")
        cluster[2].put(frag)
        got = cluster[2].get("obj", 0, 3)
        assert got.payload == b"hello"
        assert got.nbytes == 5

    def test_get_missing(self, cluster):
        with pytest.raises(KeyError):
            cluster[0].get("obj", 0, 0)

    def test_unavailable_blocks_access(self, cluster):
        cluster[1].put(StoredFragment("o", 0, 0, 3, b"abc"))
        cluster[1].fail()
        with pytest.raises(UnavailableError):
            cluster[1].get("o", 0, 0)
        with pytest.raises(UnavailableError):
            cluster[1].put(StoredFragment("o", 0, 1, 1, b"x"))
        cluster[1].restore()
        assert cluster[1].get("o", 0, 0).payload == b"abc"

    def test_used_bytes_counts_while_down(self, cluster):
        cluster[0].put(StoredFragment("o", 0, 0, 100, None))
        cluster[0].fail()
        assert cluster[0].used_bytes == 100

    def test_delete(self, cluster):
        cluster[0].put(StoredFragment("o", 1, 2, 4, b"data"))
        cluster[0].delete("o", 1, 2)
        assert not cluster[0].has("o", 1, 2)


class TestCluster:
    def test_validation(self):
        with pytest.raises(ValueError):
            StorageCluster([1e9])
        with pytest.raises(ValueError):
            StorageCluster([1e9, -1])
        with pytest.raises(ValueError):
            StorageCluster([1e9, 1e9], names=["only-one"])

    def test_place_and_locate(self, cluster):
        frags = [b"frag%d" % i for i in range(6)]
        placement = cluster.place_level("obj", 0, frags)
        assert placement == list(range(6))
        loc = cluster.locate("obj", 0)
        assert loc == {i: i for i in range(6)}

    def test_place_simulated_sizes(self, cluster):
        cluster.place_level("big", 2, [10**12] * 8)
        assert cluster.total_stored_bytes() == 8 * 10**12

    def test_place_custom_permutation(self, cluster):
        cluster.place_level("obj", 0, [b"a", b"b"], system_ids=[5, 2])
        assert cluster.locate("obj", 0) == {0: 5, 1: 2}

    def test_place_duplicate_system_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.place_level("obj", 0, [b"a", b"b"], system_ids=[1, 1])

    def test_place_too_many(self, cluster):
        with pytest.raises(ValueError):
            cluster.place_level("obj", 0, [b"x"] * 9)

    def test_locate_respects_failures(self, cluster):
        cluster.place_level("obj", 0, [b"x"] * 8)
        cluster.fail([0, 3])
        loc = cluster.locate("obj", 0)
        assert set(loc.values()) == set(range(8)) - {0, 3}
        assert cluster.failed_ids() == [0, 3]
        cluster.restore_all()
        assert len(cluster.locate("obj", 0)) == 8

    def test_level_available(self, cluster):
        cluster.place_level("obj", 1, [b"x"] * 8)
        cluster.fail([0, 1, 2])
        assert cluster.level_available("obj", 1, needed=5)
        assert not cluster.level_available("obj", 1, needed=6)

    def test_fetch_prefers_any_available(self, cluster):
        cluster.place_level("obj", 0, [b"a", b"b", b"c"])
        cluster.fail([1])
        assert cluster.fetch("obj", 0, 0).payload == b"a"
        with pytest.raises(KeyError):
            cluster.fetch("obj", 0, 1)


class TestFailureModels:
    def test_bernoulli_probability(self):
        model = BernoulliFailureModel(0.3, seed=0)
        draws = np.array([model.sample(1000).mean() for _ in range(5)])
        assert abs(draws.mean() - 0.3) < 0.02

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliFailureModel(1.5)

    def test_bernoulli_deterministic(self):
        a = BernoulliFailureModel(0.5, seed=7).sample_failed_ids(20)
        b = BernoulliFailureModel(0.5, seed=7).sample_failed_ids(20)
        assert a == b

    def test_exact_k(self):
        ids = exact_k_failures(16, 4, seed=1)
        assert len(ids) == 4
        assert len(set(ids)) == 4
        assert all(0 <= i < 16 for i in ids)
        with pytest.raises(ValueError):
            exact_k_failures(4, 5)

    def test_maintenance_schedule(self):
        sched = MaintenanceSchedule()
        sched.add_window(2, 10.0, 20.0)
        sched.add_window(5, 15.0, 25.0)
        assert sched.down_at(5.0) == []
        assert sched.down_at(12.0) == [2]
        assert sched.down_at(18.0) == [2, 5]
        assert sched.down_at(20.0) == [5]
        with pytest.raises(ValueError):
            sched.add_window(0, 5.0, 5.0)

    def test_correlated_failures(self):
        model = CorrelatedFailureModel(
            regions=[[0, 1, 2], [3, 4]], p_region=1.0, p_single=0.0, seed=0
        )
        assert model.sample_failed_ids(6) == [0, 1, 2, 3, 4]

    def test_correlated_validation(self):
        with pytest.raises(ValueError):
            CorrelatedFailureModel([[0], [0]], 0.1, 0.1)
        with pytest.raises(ValueError):
            CorrelatedFailureModel([[0]], 1.5, 0.1)
