"""Tests for the quorum-replicated metadata store (the paper's future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata import MetadataCatalog, ObjectRecord, QuorumError, ReplicatedKVStore


def make_store(tmp_path, n=3, **kw):
    return ReplicatedKVStore([tmp_path / f"rep{i}" for i in range(n)], **kw)


class TestBasics:
    def test_put_get_delete(self, tmp_path):
        with make_store(tmp_path) as kv:
            kv.put(b"k", b"v1")
            assert kv.get(b"k") == b"v1"
            kv.put(b"k", b"v2")
            assert kv.get(b"k") == b"v2"
            assert kv.delete(b"k") is True
            assert kv.get(b"k") is None
            assert kv.delete(b"k") is False

    def test_scan_keys_len_contains(self, tmp_path):
        with make_store(tmp_path) as kv:
            kv.put(b"a/1", b"x")
            kv.put(b"a/2", b"y")
            kv.put(b"b/1", b"z")
            kv.delete(b"a/2")
            assert kv.keys(b"a/") == [b"a/1"]
            assert kv.scan(b"b/") == [(b"b/1", b"z")]
            assert b"a/1" in kv and b"a/2" not in kv
            assert len(kv) == 2

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ReplicatedKVStore([tmp_path / "one"])
        with pytest.raises(ValueError):
            make_store(tmp_path, write_quorum=1, read_quorum=1)
        with pytest.raises(ValueError):
            make_store(tmp_path, write_quorum=5)
        with make_store(tmp_path) as kv:
            with pytest.raises(TypeError):
                kv.put(b"k", "str")


class TestFailures:
    def test_survives_minority_failure(self, tmp_path):
        with make_store(tmp_path, n=3) as kv:
            kv.put(b"k", b"before")
            kv.fail_replica(0)
            assert kv.get(b"k") == b"before"
            kv.put(b"k", b"after")
            assert kv.get(b"k") == b"after"

    def test_quorum_loss_blocks_writes(self, tmp_path):
        with make_store(tmp_path, n=3) as kv:
            kv.fail_replica(0)
            kv.fail_replica(1)
            with pytest.raises(QuorumError):
                kv.put(b"k", b"v")
            with pytest.raises(QuorumError):
                kv.get(b"k")

    def test_stale_replica_never_wins(self, tmp_path):
        """Quorum intersection: a write during a replica outage is still
        observed after the stale replica returns."""
        with make_store(tmp_path, n=3) as kv:
            kv.put(b"k", b"v1")
            kv.fail_replica(2)
            kv.put(b"k", b"v2")
            kv.restore_replica(2)
            for _ in range(5):
                assert kv.get(b"k") == b"v2"

    def test_tombstone_survives_stale_replica(self, tmp_path):
        with make_store(tmp_path, n=3) as kv:
            kv.put(b"k", b"v")
            kv.fail_replica(2)
            kv.delete(b"k")
            kv.restore_replica(2)
            assert kv.get(b"k") is None
            assert kv.keys() == []

    def test_read_repair(self, tmp_path):
        with make_store(tmp_path, n=3, read_quorum=3, write_quorum=1) as kv:
            kv.put(b"k", b"v1")
            kv.fail_replica(2)
            kv.put(b"k", b"v2")
            kv.restore_replica(2)
            kv.get(b"k")  # triggers read repair on replica 2
            raw = kv.replicas[2].get(b"k")
            assert raw is not None
            assert kv._decode(raw)[2] == b"v2"

    def test_recover_replica(self, tmp_path):
        with make_store(tmp_path, n=3) as kv:
            for i in range(20):
                kv.put(f"key-{i}".encode(), str(i).encode())
            kv.fail_replica(1)
            for i in range(20, 30):
                kv.put(f"key-{i}".encode(), str(i).encode())
            kv.delete(b"key-0")
            copied = kv.recover_replica(1)
            assert copied > 0
            # after recovery, replica 1 alone has everything current
            kv.fail_replica(0)
            kv.fail_replica(2)
            kv.restore_replica(1)
            # need read quorum 2: restore replica 0 too
            kv.restore_replica(0)
            assert kv.get(b"key-25") == b"25"
            assert kv.get(b"key-0") is None


class TestCatalogIntegration:
    def test_catalog_over_replicated_store(self, tmp_path):
        kv = make_store(tmp_path, n=3)
        cat = MetadataCatalog(kv)
        rec = ObjectRecord(
            name="obj", shape=[8, 8], dtype="float32",
            level_sizes=[10, 100], level_errors=[0.1, 0.01],
            ft_config=[3, 1], n_systems=8,
        )
        cat.put_object(rec)
        kv.fail_replica(0)
        got = cat.get_object("obj")
        assert got.ft_config == [3, 1]
        assert cat.list_objects() == ["obj"]
        kv.close()

    def test_durability_across_reopen(self, tmp_path):
        paths = [tmp_path / f"rep{i}" for i in range(3)]
        with ReplicatedKVStore(paths) as kv:
            kv.put(b"persist", b"yes")
        with ReplicatedKVStore(paths) as kv:
            assert kv.get(b"persist") == b"yes"


@given(
    st.lists(
        st.tuples(
            st.sampled_from([b"k1", b"k2", b"k3"]),
            st.one_of(st.binary(max_size=16), st.none()),
            st.sampled_from([None, 0, 1, 2]),  # replica to toggle before op
        ),
        max_size=25,
    )
)
@settings(max_examples=20, deadline=None)
def test_matches_dict_model_under_churn(tmp_path_factory, ops):
    """Property: with quorums intact, the replicated store behaves like a
    dict even while individual replicas bounce up and down."""
    path = tmp_path_factory.mktemp("rkv")
    model = {}
    with ReplicatedKVStore([path / f"r{i}" for i in range(3)]) as kv:
        down: set[int] = set()
        for key, val, toggle in ops:
            if toggle is not None:
                if toggle in down:
                    down.remove(toggle)
                    kv.restore_replica(toggle)
                    kv.recover_replica(toggle)
                elif len(down) == 0:  # keep a majority up at all times
                    down.add(toggle)
                    kv.fail_replica(toggle)
            if val is None:
                model.pop(key, None)
                kv.delete(key)
            else:
                model[key] = val
                kv.put(key, val)
            for k in (b"k1", b"k2", b"k3"):
                assert kv.get(k) == model.get(k)
