"""Tests for the multi-object archive manager."""

import numpy as np
import pytest

from repro.core import RAPIDS
from repro.core.archive import Archive
from repro.metadata import MetadataCatalog
from repro.refactor import relative_linf_error
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile


def fields(k=3, n=17, seed=0):
    rng = np.random.default_rng(seed)
    out = {}
    x = np.linspace(0, 1, n)
    for i in range(k):
        ph = rng.uniform(0, 2 * np.pi, 3)
        f = (
            np.sin(3 * x + ph[0])[:, None, None]
            * np.cos(2 * x + ph[1])[None, :, None]
            * np.sin(4 * x + ph[2])[None, None, :]
        ).astype(np.float32)
        out[f"snap{i:02d}:T"] = f
    return out


@pytest.fixture
def archive(tmp_path):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp_path / "meta")
    rapids = RAPIDS(cluster, catalog, omega=0.3)
    yield Archive(rapids)
    catalog.close()


class TestIngest:
    def test_batch_ingest(self, archive):
        reports = archive.ingest(fields(3))
        assert len(reports) == 3
        assert sorted(archive.names()) == sorted(fields(3).keys())
        for rep in reports.values():
            assert rep.storage_overhead <= 0.3 + 1e-9

    def test_empty_ingest(self, archive):
        with pytest.raises(ValueError):
            archive.ingest({})

    def test_accounting(self, archive):
        archive.ingest(fields(2))
        assert archive.stored_bytes() > 0
        assert 0 < archive.storage_overhead() <= 0.3 + 1e-9


class TestHealth:
    def test_all_healthy_without_failures(self, archive):
        archive.ingest(fields(3))
        h = archive.health()
        assert h.total == 3
        assert h.fully_healthy == 3
        assert h.degraded == 0 and h.dark == 0
        assert all(o.fragments_lost == 0 for o in h.objects)

    def test_degradation_under_failures(self, archive):
        reports = archive.ingest(fields(2))
        ms = next(iter(reports.values())).ft_config
        archive.rapids.cluster.fail(range(ms[-1] + 1))
        h = archive.health()
        assert h.fully_healthy == 0
        assert h.degraded == 2
        assert h.worst_error > 0

    def test_dark_archive(self, archive):
        reports = archive.ingest(fields(1))
        ms = next(iter(reports.values())).ft_config
        archive.rapids.cluster.fail(range(ms[0] + 1))
        h = archive.health()
        assert h.dark == 1
        assert h.worst_error == 1.0


class TestScrub:
    def _corrupt(self, archive, name, level, index):
        sf = archive.rapids.cluster[index].get(name, level, index)
        payload = bytearray(sf.payload)
        payload[len(payload) // 3] ^= 0xFF
        sf.payload = bytes(payload)

    def test_clean_archive_scrubs_clean(self, archive):
        archive.ingest(fields(2))
        report = archive.scrub()
        assert report["corrupt"] == 0
        assert report["repaired"] == 0
        assert report["checked"] == 2 * 4 * 16

    def test_scrub_repairs_bit_rot(self, archive):
        data = fields(1)
        archive.ingest(data)
        name = archive.names()[0]
        for idx in (2, 9):
            self._corrupt(archive, name, 1, idx)
        report = archive.scrub()
        assert report["corrupt"] == 2
        assert report["repaired"] == 2
        # a second pass finds nothing
        assert archive.scrub()["corrupt"] == 0
        # and the data restores exactly
        res = archive.rapids.restore(name, strategy="naive")
        rec = archive.rapids.catalog.get_object(name)
        assert relative_linf_error(data[name], res.data) <= (
            rec.level_errors[-1] + 1e-12
        )

    def test_scrub_detect_only(self, archive):
        archive.ingest(fields(1))
        name = archive.names()[0]
        self._corrupt(archive, name, 0, 5)
        report = archive.scrub(repair_corrupt=False)
        assert report["corrupt"] == 1
        assert report["repaired"] == 0
        # still corrupt on the next pass
        assert archive.scrub(repair_corrupt=False)["corrupt"] == 1


class TestRepair:
    def test_repair_restores_redundancy(self, archive):
        data = fields(2)
        archive.ingest(data)
        # two systems lose their disks for good
        for sid in (1, 6):
            for frag in list(archive.rapids.cluster[sid]._store.values()):
                archive.rapids.cluster[sid].delete(*frag.key)
        h = archive.health()
        assert any(o.fragments_lost > 0 for o in h.objects)

        rebuilt = archive.repair()
        assert rebuilt == sum(o.fragments_lost for o in h.objects)
        h2 = archive.health()
        assert all(o.fragments_lost == 0 for o in h2.objects)

    def test_repair_skips_down_targets(self, archive):
        archive.ingest(fields(1))
        name = archive.names()[0]
        for frag in list(archive.rapids.cluster[2]._store.values()):
            archive.rapids.cluster[2].delete(*frag.key)
        archive.rapids.cluster.fail([2])
        assert archive.repair() == 0  # home system down, nothing to do
        archive.rapids.cluster.restore_all()
        assert archive.repair() > 0

    def test_data_survives_repair_then_failures(self, archive):
        data = fields(1)
        archive.ingest(data)
        name = archive.names()[0]
        rec = archive.rapids.catalog.get_object(name)
        # destroy fragments on two systems, repair, then fail others
        for sid in (0, 5):
            for frag in list(archive.rapids.cluster[sid]._store.values()):
                archive.rapids.cluster[sid].delete(*frag.key)
        archive.repair()
        archive.rapids.cluster.fail([1, 2, 3])
        res = archive.rapids.restore(name, strategy="naive")
        assert res.levels_used == rec.num_levels
        err = relative_linf_error(data[name], res.data)
        assert err <= rec.level_errors[-1] + 1e-12
