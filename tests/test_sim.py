"""Tests for the Monte Carlo validators and the campaign simulator."""

import numpy as np
import pytest

from repro.sim import (
    CampaignConfig,
    run_campaign,
    simulate_expected_error,
    simulate_unavailability,
)
from repro.storage import CorrelatedFailureModel

MS = [8, 5, 4, 2]
ERRORS = [4e-3, 5e-4, 6e-5, 1e-7]


class TestMonteCarloUnavailability:
    def test_matches_analytic_tail(self):
        # p large enough that the tail is measurable with 2e5 trials
        res = simulate_unavailability(16, 0.1, 3, trials=200_000, seed=1)
        assert abs(res.z_score) < 4.0

    @pytest.mark.parametrize("tolerance", [0, 1, 2])
    def test_various_tolerances(self, tolerance):
        res = simulate_unavailability(8, 0.2, tolerance, trials=100_000, seed=2)
        assert abs(res.z_score) < 4.5

    def test_zero_probability_tail(self):
        res = simulate_unavailability(4, 0.05, 4, trials=1000, seed=0)
        assert res.empirical == 0.0
        assert res.analytic == 0.0


class TestMonteCarloExpectedError:
    def test_matches_eq5(self):
        # p = 0.1 makes every band of Eq. 5 statistically visible
        res = simulate_expected_error(
            16, 0.1, MS, ERRORS, trials=300_000, seed=3
        )
        assert abs(res.z_score) < 4.0
        assert res.empirical == pytest.approx(res.analytic, rel=0.1)

    def test_paper_operating_point(self):
        """At p = 0.01 the expectation is dominated by the full-accuracy
        band; the empirical mean must sit at e_l up to tail noise."""
        res = simulate_expected_error(
            16, 0.01, MS, ERRORS, trials=100_000, seed=4
        )
        assert res.empirical >= ERRORS[-1]
        assert res.empirical < ERRORS[-2]

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_expected_error(16, 0.1, [2, 2], [0.1, 0.2], trials=10)
        with pytest.raises(ValueError):
            simulate_expected_error(16, 0.1, [3], [0.1, 0.2], trials=10)

    def test_correlated_failures_break_the_model(self):
        """Region-shared-fate outages push the empirical error above the
        i.i.d. prediction — the quantified caveat of the Eq. 5 model."""
        corr = CorrelatedFailureModel(
            regions=[[0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10, 11, 12, 13, 14, 15]],
            p_region=0.05,
            p_single=0.05,
            seed=5,
        )
        res = simulate_expected_error(
            16, 0.1, MS, ERRORS, trials=30_000, seed=6, correlated=corr
        )
        assert res.empirical > res.analytic * 2


class TestCampaign:
    def cfg(self, **kw):
        base = dict(
            n=16, p_fail=0.02, p_repair=0.5, ms=tuple(MS),
            errors=tuple(ERRORS), epochs=4000, requests_per_epoch=2,
        )
        base.update(kw)
        return CampaignConfig(**base)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.cfg(p_fail=0.0)
        with pytest.raises(ValueError):
            self.cfg(ms=(2, 2, 1, 1))
        with pytest.raises(ValueError):
            self.cfg(ms=(20, 5, 4, 2))
        with pytest.raises(ValueError):
            self.cfg(epochs=0)

    def test_steady_state(self):
        cfg = self.cfg()
        assert cfg.steady_state_p == pytest.approx(0.02 / 0.52)

    def test_accounting_consistency(self):
        stats = run_campaign(self.cfg(), seed=0)
        assert stats.requests == 8000
        assert (
            stats.full_accuracy + stats.degraded + stats.blackout
            == stats.requests
        )
        assert sum(stats.levels_histogram.values()) == stats.requests
        assert 0 <= stats.availability <= 1

    def test_mean_error_tracks_analytic_steady_state(self):
        """With long campaigns, the request-weighted mean error approaches
        the Eq. 5 value at the chain's steady-state p."""
        from repro.core import expected_relative_error

        cfg = self.cfg(epochs=60_000, requests_per_epoch=1)
        stats = run_campaign(cfg, seed=1)
        analytic = expected_relative_error(
            cfg.n, cfg.steady_state_p, list(cfg.ms), list(cfg.errors)
        )
        assert stats.mean_error == pytest.approx(analytic, rel=0.35)

    def test_more_parity_fewer_blackouts(self):
        weak = run_campaign(self.cfg(ms=(4, 3, 2, 1), p_fail=0.05), seed=2)
        strong = run_campaign(self.cfg(ms=(12, 10, 8, 6), p_fail=0.05), seed=2)
        assert strong.blackout < weak.blackout
        assert strong.mean_error < weak.mean_error

    def test_deterministic(self):
        a = run_campaign(self.cfg(), seed=9)
        b = run_campaign(self.cfg(), seed=9)
        assert a.levels_histogram == b.levels_histogram
