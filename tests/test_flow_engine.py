"""Property and unit tests for the whole-program analysis engine.

Covers the three layers under the interprocedural rules:

* :mod:`repro.analysis.cfg` — hypothesis-generated random functions must
  satisfy the structural CFG invariants (every statement lives in
  exactly one block and is either reachable or reported dead; may-raise
  statements carry exception edges; ``with``/``try`` produce the
  synthetic cleanup/dispatch blocks with exception edges).
* :mod:`repro.analysis.dataflow` — the forward worklist and the
  flow-insensitive taint fixpoint.
* :mod:`repro.analysis.callgraph` — resolution of direct calls, method
  calls through ``self``, and ``module.attr`` calls through import
  aliases, over hypothesis-generated identifier names.
"""

import ast
import keyword
import textwrap

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import build_cfg, run_forward, tainted_names
from repro.analysis.callgraph import CallGraph, summarize_module
from repro.analysis.cfg import EDGE_EXC, may_raise
from repro.analysis.dataflow import ForwardAnalysis

# ---------------------------------------------------------------------------
# random-program strategy


_SIMPLE = [
    "x = work(x)",
    "x = x + 1",
    "y = x",
    "return x",
    "raise ValueError(x)",
]
_LOOP_ONLY = ["break", "continue"]


@st.composite
def _bodies(draw, depth=0, in_loop=False):
    """A list of statement source lines (relative indentation inside)."""
    lines = []
    for _ in range(draw(st.integers(1, 3))):
        choices = ["simple"]
        if depth < 2:
            choices += ["if", "while", "for", "try", "with"]
        if in_loop:
            choices += ["jump"]
        kind = draw(st.sampled_from(choices))
        if kind == "simple":
            lines.append(draw(st.sampled_from(_SIMPLE)))
        elif kind == "jump":
            lines.append(draw(st.sampled_from(_LOOP_ONLY)))
        elif kind == "if":
            lines.append("if x:")
            lines += indent(draw(_bodies(depth=depth + 1, in_loop=in_loop)))
            if draw(st.booleans()):
                lines.append("else:")
                lines += indent(
                    draw(_bodies(depth=depth + 1, in_loop=in_loop))
                )
        elif kind == "while":
            lines.append("while x:")
            lines += indent(draw(_bodies(depth=depth + 1, in_loop=True)))
        elif kind == "for":
            lines.append("for i in range(3):")
            lines += indent(draw(_bodies(depth=depth + 1, in_loop=True)))
        elif kind == "try":
            lines.append("try:")
            lines += indent(draw(_bodies(depth=depth + 1, in_loop=in_loop)))
            has_handler = draw(st.booleans())
            if has_handler:
                lines.append("except ValueError:")
                lines += indent(
                    draw(_bodies(depth=depth + 1, in_loop=in_loop))
                )
            if not has_handler or draw(st.booleans()):
                lines.append("finally:")
                lines += indent(
                    draw(_bodies(depth=depth + 1, in_loop=in_loop))
                )
        elif kind == "with":
            lines.append("with work(x) as w:")
            lines += indent(draw(_bodies(depth=depth + 1, in_loop=in_loop)))
    return lines


def indent(lines):
    return ["    " + ln for ln in lines]


def fn_from_lines(lines):
    src = "def f(x):\n" + "\n".join(indent(lines))
    tree = ast.parse(src)
    return tree.body[0]


def own_stmts(fn):
    """Every statement of ``fn`` except the def itself (no nested defs
    are generated)."""
    return [
        n for n in ast.walk(fn) if isinstance(n, ast.stmt) and n is not fn
    ]


_COMPOUND = (ast.If, ast.While, ast.For, ast.Try, ast.With)


class TestCFGProperties:
    @settings(max_examples=60, deadline=None)
    @given(_bodies())
    def test_every_statement_in_exactly_one_block(self, lines):
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        placed = cfg.statements()
        assert len(placed) == len({id(s) for s in placed})
        for stmt in own_stmts(fn):
            assert id(stmt) in cfg.block_of
            assert cfg.block_of[id(stmt)].stmts == [stmt]

    @settings(max_examples=60, deadline=None)
    @given(_bodies())
    def test_reachable_or_reported_dead(self, lines):
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        live = cfg.reachable()
        dead = {id(s) for s in cfg.unreachable_stmts()}
        for stmt in own_stmts(fn):
            in_live_block = cfg.block_of[id(stmt)] in live
            assert in_live_block != (id(stmt) in dead)

    @settings(max_examples=60, deadline=None)
    @given(_bodies())
    def test_may_raise_simple_statements_have_exception_edges(self, lines):
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        for stmt in own_stmts(fn):
            if isinstance(stmt, _COMPOUND) or not may_raise(stmt):
                continue
            block = cfg.block_of[id(stmt)]
            assert any(kind == EDGE_EXC for _, kind in block.succs), (
                f"{type(stmt).__name__} at line {stmt.lineno} may raise "
                "but has no exception edge"
            )

    @settings(max_examples=60, deadline=None)
    @given(_bodies())
    def test_every_reachable_block_reaches_an_exit(self, lines):
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        exits = {cfg.exit.idx, cfg.exc_exit.idx}
        for block in cfg.reachable():
            if block.idx in exits:
                continue
            seen, stack = set(), [block]
            while stack:
                b = stack.pop()
                if b.idx in seen:
                    continue
                seen.add(b.idx)
                stack.extend(s for s, _ in b.succs)
            assert seen & exits, f"{block!r} cannot reach any exit"

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4))
    def test_with_bodies_get_cleanup_blocks_on_both_paths(self, n):
        lines = ["with work(x) as w:"] + indent(["x = work(x)"] * n)
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        cleanups = [b for b in cfg.blocks if b.label == "with-cleanup"]
        assert len(cleanups) == 2  # one normal, one exceptional
        assert all(b.with_items == [("work", "w")] for b in cleanups)
        exc_cleanup = next(
            b for b in cleanups
            if any(k == EDGE_EXC for _, k in b.succs)
        )
        # The exceptional cleanup re-raises: its exception edge must end
        # at the function's exceptional exit (no enclosing handler here).
        assert any(
            s is cfg.exc_exit for s, k in exc_cleanup.succs if k == EDGE_EXC
        )
        # Every may-raise body statement unwinds through that cleanup.
        for stmt in fn.body[0].body:
            block = cfg.block_of[id(stmt)]
            assert (exc_cleanup, EDGE_EXC) in block.succs

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4))
    def test_try_bodies_raise_into_the_dispatch_block(self, n):
        lines = (
            ["try:"] + indent(["x = work(x)"] * n)
            + ["except ValueError:", "    y = 0"]
        )
        fn = fn_from_lines(lines)
        cfg = build_cfg(fn)
        dispatch = next(
            b for b in cfg.blocks if b.label == "except-dispatch"
        )
        for stmt in fn.body[0].body:
            block = cfg.block_of[id(stmt)]
            assert (dispatch, EDGE_EXC) in block.succs
        # A narrow handler does not swallow unmatched exceptions: the
        # dispatch keeps an exception edge onward to the outer target.
        assert any(
            s is cfg.exc_exit for s, k in dispatch.succs if k == EDGE_EXC
        )

    def test_enter_failure_bypasses_cleanup(self):
        fn = fn_from_lines(["with work(x) as w:", "    y = x"])
        cfg = build_cfg(fn)
        head = cfg.block_of[id(fn.body[0])]
        # work(x) raising in __enter__ must unwind WITHOUT running the
        # cleanup (__exit__ is only called after a successful __enter__).
        assert any(
            s is cfg.exc_exit for s, k in head.succs if k == EDGE_EXC
        )

    def test_return_routes_through_finally(self):
        fn = fn_from_lines(
            ["try:", "    return x", "finally:", "    y = 0"]
        )
        cfg = build_cfg(fn)
        ret = next(
            s for s in cfg.statements() if isinstance(s, ast.Return)
        )
        block = cfg.block_of[id(ret)]
        assert not any(s is cfg.exit for s, _ in block.succs)
        assert any(s.label == "finally" for s, _ in block.succs)


# ---------------------------------------------------------------------------
# dataflow


class _ReachingCalls(ForwardAnalysis):
    """Toy client: set of callee chains executed so far."""

    def transfer_stmt(self, state, stmt):
        names = {
            node.func.id
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }
        return state | frozenset(names)


class TestForwardDataflow:
    def test_states_merge_at_joins(self):
        fn = fn_from_lines(
            ["if x:", "    a()", "else:", "    b()", "c()"]
        )
        cfg = build_cfg(fn)
        states = run_forward(cfg, _ReachingCalls())
        at_exit = states[cfg.exit.idx]
        assert {"a", "b", "c"} <= at_exit

    def test_exception_edge_keeps_incoming_state(self):
        # If a() raises, its effect never happened on the exc path: the
        # default transfer_exc forwards the incoming state unchanged.
        fn = fn_from_lines(["a()"])
        cfg = build_cfg(fn)
        states = run_forward(cfg, _ReachingCalls())
        assert "a" in states[cfg.exit.idx]
        assert "a" not in states[cfg.exc_exit.idx]

    def test_loop_reaches_fixpoint(self):
        fn = fn_from_lines(["while x:", "    a()", "b()"])
        cfg = build_cfg(fn)
        states = run_forward(cfg, _ReachingCalls())
        assert {"a", "b"} <= states[cfg.exit.idx]


class TestTaintedNames:
    def test_chain_propagates_regardless_of_order(self):
        # y is assigned from x BEFORE x becomes tainted: the fixpoint
        # must still catch it (the old two-pass loop's whole point).
        scope = ast.parse(
            textwrap.dedent(
                """
                def f():
                    y = x
                    x = seed()
                    z = y
                """
            )
        ).body[0]
        names = tainted_names(
            scope,
            seeds=lambda v: isinstance(v, ast.Call)
            and isinstance(v.func, ast.Name)
            and v.func.id == "seed",
        )
        assert {"x", "y", "z"} <= names

    def test_sanitizer_blocks_flow_and_terminates(self):
        # x = clean(x) must not keep x tainted forever (monotone
        # transfer: sanitized assignments just add nothing).
        scope = ast.parse(
            textwrap.dedent(
                """
                def f():
                    x = seed()
                    y = clean(x)
                    z = y
                """
            )
        ).body[0]
        names = tainted_names(
            scope,
            seeds=lambda v: isinstance(v, ast.Call)
            and isinstance(v.func, ast.Name)
            and v.func.id == "seed",
            sanitizers=lambda v: isinstance(v, ast.Call)
            and isinstance(v.func, ast.Name)
            and v.func.id == "clean",
        )
        assert "x" in names
        assert "y" not in names
        assert "z" not in names


# ---------------------------------------------------------------------------
# call-graph resolution


_ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
)


def _graph(sources):
    summaries = [
        summarize_module(path, ast.parse(textwrap.dedent(src)))
        for path, src in sources.items()
    ]
    return CallGraph(summaries)


class TestCallGraphResolution:
    @settings(max_examples=30, deadline=None)
    @given(fn=_ident, helper=_ident)
    def test_direct_call_same_module(self, fn, helper):
        assume(fn != helper)
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: f"""
                def {helper}():
                    pass

                def {fn}():
                    {helper}()
                """
            }
        )
        assert [c for c, _ in graph.callees(f"{path}:{fn}")] == [
            f"{path}:{helper}"
        ]

    @settings(max_examples=30, deadline=None)
    @given(cls=_ident, meth=_ident, caller=_ident)
    def test_self_method_call(self, cls, meth, caller):
        assume(meth != caller)
        cls = cls.capitalize()
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: f"""
                class {cls}:
                    def {meth}(self):
                        pass

                    def {caller}(self):
                        self.{meth}()
                """
            }
        )
        assert [c for c, _ in graph.callees(f"{path}:{cls}.{caller}")] == [
            f"{path}:{cls}.{meth}"
        ]

    @settings(max_examples=30, deadline=None)
    @given(fn=_ident, helper=_ident)
    def test_module_attr_call_via_import(self, fn, helper):
        assume(fn != helper)
        lib = "src/repro/pkg/lib.py"
        app = "src/repro/pkg/app.py"
        graph = _graph(
            {
                lib: f"""
                def {helper}():
                    pass
                """,
                app: f"""
                from repro.pkg import lib

                def {fn}():
                    lib.{helper}()
                """,
            }
        )
        assert [c for c, _ in graph.callees(f"{app}:{fn}")] == [
            f"{lib}:{helper}"
        ]

    def test_from_import_of_function(self):
        lib = "src/repro/pkg/lib.py"
        app = "src/repro/pkg/app.py"
        graph = _graph(
            {
                lib: "def helper():\n    pass\n",
                app: (
                    "from repro.pkg.lib import helper\n"
                    "def main():\n"
                    "    helper()\n"
                ),
            }
        )
        assert [c for c, _ in graph.callees(f"{app}:main")] == [
            f"{lib}:helper"
        ]

    def test_inherited_method_resolves_through_base(self):
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: """
                class Base:
                    def close(self):
                        pass

                class Derived(Base):
                    def run(self):
                        self.close()
                """
            }
        )
        assert [c for c, _ in graph.callees(f"{path}:Derived.run")] == [
            f"{path}:Base.close"
        ]

    def test_unresolvable_dynamic_call_produces_no_edge(self):
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: """
                def main(obj):
                    obj.whatever()
                """
            }
        )
        assert graph.callees(f"{path}:main") == []

    def test_reachability_and_chain(self):
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: """
                def c():
                    pass

                def b():
                    c()

                def a():
                    b()
                """
            }
        )
        qa, qb, qc = (f"{path}:{n}" for n in "abc")
        assert graph.reachable_from([qa]) == {qa, qb, qc}
        assert graph.call_chain(qa, qc) == [qa, qb, qc]
        assert graph.call_chain(qc, qa) is None

    def test_locks_held_at_call_sites(self):
        path = "src/repro/pkg/a.py"
        graph = _graph(
            {
                path: """
                class Store:
                    def flush(self):
                        pass

                    def put(self):
                        with self._lock:
                            self.flush()
                """
            }
        )
        (callee, site), = graph.callees(f"{path}:Store.put")
        assert callee == f"{path}:Store.flush"
        assert site.held_locks == (f"{path}:Store._lock",)
