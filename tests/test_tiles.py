"""Tests for multi-axis tiled decomposition and ROI reconstruction."""

import numpy as np
import pytest

from repro.parallel.tiles import (
    TileGrid,
    tile_reconstruct,
    tile_reconstruct_roi,
    tile_refactor,
)
from repro.refactor import Refactorer, relative_linf_error


def field(n=36, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, n)
    return (
        np.sin(4 * x)[:, None, None]
        * np.cos(3 * x)[None, :, None]
        * np.sin(2 * x)[None, None, :]
        + 0.01 * rng.normal(size=(n, n, n))
    ).astype(np.float32)


class TestTileGrid:
    def test_regular_geometry(self):
        grid = TileGrid.regular((36, 36, 36), 3)
        assert grid.grid_shape == (3, 3, 3)
        assert grid.num_tiles == 27
        # boxes partition the domain
        cover = np.zeros((36, 36, 36), dtype=int)
        for idx in grid.tile_indices():
            cover[grid.tile_box(idx)] += 1
        assert np.all(cover == 1)

    def test_anisotropic(self):
        grid = TileGrid.regular((40, 12, 8), (4, 2, 1))
        assert grid.grid_shape == (4, 2, 1)

    def test_clamps_tiny_axes(self):
        grid = TileGrid.regular((8, 4), (10, 10))
        for d in range(2):
            widths = np.diff(grid.bounds[d])
            assert np.all(widths >= 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TileGrid.regular((8, 8), (2,))
        with pytest.raises(ValueError):
            TileGrid.regular((8, 8), 0)
        grid = TileGrid.regular((8, 8), 2)
        with pytest.raises(ValueError):
            grid.tiles_intersecting(((0, 4),))
        with pytest.raises(ValueError):
            grid.tiles_intersecting(((0, 9), (0, 4)))

    def test_tiles_intersecting(self):
        grid = TileGrid.regular((36, 36, 36), 3)
        # a box inside one tile
        assert grid.tiles_intersecting(((0, 5), (0, 5), (0, 5))) == [(0, 0, 0)]
        # a box straddling a cut at 12
        hits = grid.tiles_intersecting(((10, 14), (0, 5), (0, 5)))
        assert set(hits) == {(0, 0, 0), (1, 0, 0)}
        # the full domain hits everything
        assert len(grid.tiles_intersecting(((0, 36),) * 3)) == 27


class TestTileRefactoring:
    def test_roundtrip(self):
        data = field()
        grid = TileGrid.regular(data.shape, 3)
        tiles = tile_refactor(data, grid, refactorer=Refactorer(3, num_planes=24))
        back = tile_reconstruct(tiles, grid, refactorer=Refactorer(3))
        assert back.shape == data.shape
        assert relative_linf_error(data, back) < 1e-4

    def test_shape_mismatch(self):
        grid = TileGrid.regular((10, 10), 2)
        with pytest.raises(ValueError):
            tile_refactor(field(), grid)

    def test_roi_matches_full(self):
        data = field()
        grid = TileGrid.regular(data.shape, 3)
        tiles = tile_refactor(data, grid, refactorer=Refactorer(3, num_planes=24))
        full = tile_reconstruct(tiles, grid, refactorer=Refactorer(3))
        roi = ((5, 20), (13, 30), (0, 9))
        box, touched = tile_reconstruct_roi(
            tiles, grid, roi, refactorer=Refactorer(3)
        )
        np.testing.assert_array_equal(
            box, full[5:20, 13:30, 0:9]
        )
        assert touched < grid.num_tiles

    def test_small_roi_touches_few_tiles(self):
        data = field()
        grid = TileGrid.regular(data.shape, 3)
        tiles = tile_refactor(data, grid, refactorer=Refactorer(3, num_planes=24))
        _, touched = tile_reconstruct_roi(
            tiles, grid, ((0, 6), (0, 6), (0, 6)), refactorer=Refactorer(3)
        )
        assert touched == 1

    def test_progressive_roi(self):
        data = field()
        grid = TileGrid.regular(data.shape, 2)
        tiles = tile_refactor(data, grid, refactorer=Refactorer(3, num_planes=24))
        roi = ((0, 18), (0, 18), (0, 18))
        lossy, _ = tile_reconstruct_roi(
            tiles, grid, roi, upto=1, refactorer=Refactorer(3)
        )
        exact, _ = tile_reconstruct_roi(
            tiles, grid, roi, refactorer=Refactorer(3)
        )
        ref = data[0:18, 0:18, 0:18]
        assert relative_linf_error(ref, lossy) > relative_linf_error(ref, exact)


class TestTileWorkers:
    def test_threaded_tiles_bit_identical(self):
        data = field()
        grid = TileGrid.regular(data.shape, 3)
        ref = Refactorer(3, num_planes=24, workers=1)
        t1 = tile_refactor(data, grid, refactorer=ref, workers=1)
        t4 = tile_refactor(data, grid, refactorer=ref, workers=4)
        for key in t1:
            assert t1[key].payloads == t4[key].payloads
        out1 = tile_reconstruct(t1, grid, refactorer=Refactorer(3), workers=1)
        out4 = tile_reconstruct(t1, grid, refactorer=Refactorer(3), workers=4)
        assert out1.tobytes() == out4.tobytes()
        roi = ((2, 20), (7, 31), (0, 15))
        a, na = tile_reconstruct_roi(
            t1, grid, roi, refactorer=Refactorer(3), workers=1
        )
        b, nb = tile_reconstruct_roi(
            t1, grid, roi, refactorer=Refactorer(3), workers=4
        )
        assert (na, nb) == (na, na)
        assert a.tobytes() == b.tobytes()

    def test_threaded_tiles_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("RAPIDS_THREAD_SANITIZER", "1")
        data = field()
        grid = TileGrid.regular(data.shape, 2)
        tiles = tile_refactor(
            data, grid, refactorer=Refactorer(3, num_planes=24), workers=4
        )
        back = tile_reconstruct(tiles, grid, refactorer=Refactorer(3), workers=4)
        assert relative_linf_error(data, back) < 1e-4
