"""Tests for the maintenance-aware proactive operator."""

import numpy as np
import pytest

from repro.core import RAPIDS, Archive
from repro.core.operator import ProactiveOperator
from repro.metadata import MetadataCatalog
from repro.refactor import relative_linf_error
from repro.storage import MaintenanceSchedule, StorageCluster
from repro.transfer import paper_bandwidth_profile


def smooth(seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, 33)
    ph = rng.uniform(0, 2 * np.pi, 3)
    return (
        np.sin(4 * x + ph[0])[:, None, None]
        * np.cos(3 * x + ph[1])[None, :, None]
        * np.sin(2 * x + ph[2])[None, None, :]
    ).astype(np.float32)


@pytest.fixture
def setup(tmp_path):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(tmp_path / "meta")
    rapids = RAPIDS(cluster, catalog, omega=0.25)
    archive = Archive(rapids)
    data = {"a:T": smooth(0), "b:P": smooth(1)}
    reports = archive.ingest(data)
    sched = MaintenanceSchedule()
    yield archive, sched, data, reports
    catalog.close()


class TestRiskAnalysis:
    def test_window_systems(self, setup):
        archive, sched, _, _ = setup
        op = ProactiveOperator(archive, sched)
        sched.add_window(2, 10.0, 20.0)
        sched.add_window(5, 15.0, 25.0)
        assert op.window_systems(12.0, 18.0) == [2, 5]
        assert op.window_systems(21.0, 24.0) == [5]
        assert op.window_systems(30.0, 40.0) == []

    def test_at_risk_levels(self, setup):
        archive, sched, _, reports = setup
        ms = next(iter(reports.values())).ft_config
        # take down one more system than the bottom level tolerates
        for sid in range(ms[-1] + 1):
            sched.add_window(sid, 0.0, 10.0)
        op = ProactiveOperator(archive, sched)
        risky = op.at_risk(0.0, 10.0)
        # bottom level of both objects at risk; upper levels fine
        assert ("a:T", 3) in risky and ("b:P", 3) in risky
        assert ("a:T", 0) not in risky

    def test_no_risk_small_window(self, setup):
        archive, sched, _, _ = setup
        sched.add_window(0, 0.0, 5.0)
        op = ProactiveOperator(archive, sched)
        assert op.at_risk(0.0, 5.0) == []


class TestStaging:
    def _big_window(self, sched, reports, extra=1):
        ms = next(iter(reports.values())).ft_config
        n_down = ms[-1] + extra
        for sid in range(n_down):
            sched.add_window(sid, 100.0, 200.0)
        return list(range(n_down))

    def test_stage_and_restore_through_window(self, setup):
        archive, sched, data, reports = setup
        down = self._big_window(sched, reports)
        op = ProactiveOperator(archive, sched)
        created = op.stage_for_window(100.0, 200.0)
        assert created
        assert all(c.system_id not in down for c in created)

        # the window arrives
        archive.rapids.cluster.fail(down)
        plain = archive.rapids.restore("a:T", strategy="naive")
        assert plain.levels_used < 4  # without staging: degraded
        staged_data, levels = op.restore_with_staging("a:T")
        assert levels == 4
        err = relative_linf_error(data["a:T"], staged_data)
        rec = archive.rapids.catalog.get_object("a:T")
        assert err <= rec.level_errors[-1] + 1e-12

    def test_budget_prefers_cheap_levels(self, setup):
        archive, sched, _, reports = setup
        self._big_window(sched, reports, extra=2)  # two levels at risk
        op = ProactiveOperator(archive, sched)
        rec = archive.rapids.catalog.get_object("a:T")
        # budget fits only the two level-2 payloads, not level-3 ones
        budget = 2 * rec.level_sizes[2] + rec.level_sizes[3] // 2
        created = op.stage_for_window(100.0, 200.0, budget_bytes=budget)
        assert created
        assert all(c.level == 2 for c in created)

    def test_unstage(self, setup):
        archive, sched, _, reports = setup
        self._big_window(sched, reports)
        op = ProactiveOperator(archive, sched)
        created = op.stage_for_window(100.0, 200.0)
        assert op.unstage() == len(created)
        assert op.staged == []
        assert op.unstage() == 0

    def test_stage_idempotent(self, setup):
        archive, sched, _, reports = setup
        self._big_window(sched, reports)
        op = ProactiveOperator(archive, sched)
        first = op.stage_for_window(100.0, 200.0)
        second = op.stage_for_window(100.0, 200.0)
        assert first and not second

    def test_validation(self, setup):
        archive, sched, _, reports = setup
        op = ProactiveOperator(archive, sched)
        with pytest.raises(ValueError):
            op.stage_for_window(0.0, 1.0, budget_bytes=0)

    def test_all_systems_down_rejected(self, setup):
        archive, sched, _, _ = setup
        for sid in range(16):
            sched.add_window(sid, 0.0, 1.0)
        op = ProactiveOperator(archive, sched)
        with pytest.raises(RuntimeError):
            op.stage_for_window(0.0, 1.0)
