"""Tests for bitplane encoding/decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.refactor.bitplane import decode_planes, encode_planes, plane_weight


def test_roundtrip_full_precision():
    rng = np.random.default_rng(0)
    c = rng.normal(size=1000)
    ps = encode_planes(c, num_planes=40)
    back = decode_planes(ps)
    # error bounded by the quantisation LSB
    lsb = 2.0 ** (ps.exponent - ps.num_planes + 1)
    assert np.max(np.abs(back - c)) <= lsb


def test_progressive_error_decreases():
    rng = np.random.default_rng(1)
    c = rng.normal(size=500)
    ps = encode_planes(c, num_planes=32)
    errs = [np.max(np.abs(decode_planes(ps, keep=k) - c)) for k in range(0, 33, 4)]
    assert all(a >= b for a, b in zip(errs, errs[1:]))
    assert errs[-1] < errs[0] / 1e6


def test_keep_zero_gives_zeros():
    c = np.array([1.0, -2.0, 3.0])
    ps = encode_planes(c)
    assert np.all(decode_planes(ps, keep=0) == 0)


def test_error_bound_per_prefix():
    """Keeping k planes bounds the error by the first missing plane weight."""
    rng = np.random.default_rng(2)
    c = rng.uniform(-10, 10, size=300)
    ps = encode_planes(c, num_planes=24)
    for k in (1, 4, 8, 16):
        back = decode_planes(ps, keep=k)
        bound = 2.0 ** (ps.exponent - k + 1)
        assert np.max(np.abs(back - c)) <= bound


def test_signs_preserved():
    c = np.array([-1.5, 2.5, -0.25, 0.0, 4.0])
    ps = encode_planes(c, num_planes=30)
    back = decode_planes(ps)
    assert np.all(np.sign(back[np.abs(c) > 1e-6]) == np.sign(c[np.abs(c) > 1e-6]))


def test_empty_input():
    ps = encode_planes(np.zeros(0))
    assert ps.count == 0
    assert decode_planes(ps).size == 0


def test_all_zero_input():
    ps = encode_planes(np.zeros(64))
    back = decode_planes(ps)
    assert np.all(back == 0)


def test_invalid_num_planes():
    with pytest.raises(ValueError):
        encode_planes(np.ones(4), num_planes=0)
    with pytest.raises(ValueError):
        encode_planes(np.ones(4), num_planes=61)


def test_invalid_keep():
    ps = encode_planes(np.ones(4), num_planes=8)
    with pytest.raises(ValueError):
        decode_planes(ps, keep=9)
    with pytest.raises(ValueError):
        decode_planes(ps, keep=-1)


def test_plane_weight():
    ps = encode_planes(np.array([8.0]), num_planes=8)
    assert ps.exponent == 3
    assert plane_weight(ps, 0) == 8.0
    assert plane_weight(ps, 3) == 1.0


def test_msb_planes_compress_better_on_smooth_data():
    """MSB planes of smooth-field coefficients are mostly zeros."""
    x = np.linspace(0, 1, 4097)
    c = 1e-3 * np.sin(40 * x) + 1.0 * (x > 0.999)  # one large spike
    ps = encode_planes(c, num_planes=32)
    sizes = ps.plane_nbytes
    assert sizes[0] < sizes[-1]


@given(
    st.lists(st.floats(-1e9, 1e9, allow_nan=False, width=64), min_size=1, max_size=200),
    st.integers(min_value=8, max_value=48),
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(values, planes):
    c = np.array(values)
    ps = encode_planes(c, num_planes=planes)
    back = decode_planes(ps)
    amax = np.max(np.abs(c))
    if amax > 0 and ps.num_planes > 0:
        # ps.num_planes may be fewer than requested for data at the
        # subnormal floor; the bound always uses the effective count.
        assert np.max(np.abs(back - c)) <= 2.0 ** (
            ps.exponent - ps.num_planes + 1
        )
    elif amax == 0:
        assert np.all(back == 0)
