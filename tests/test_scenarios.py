"""Chaos-campaign scenario suite: determinism, safety, and the
campaign's failure-model / step-hook protocols."""

import json

import pytest

from repro.chaos import FaultPlan
from repro.cli import main
from repro.control import SCENARIOS, run_scenario, scenario_json
from repro.control.scenarios import _longest_run
from repro.sim import CampaignConfig, plan_outages_at_epoch, run_campaign
from repro.storage.failures import CorrelatedFailureModel, MaintenanceSchedule


def config(**kw):
    base = dict(
        n=8, p_fail=0.05, p_repair=0.5, ms=(4, 3, 2, 1),
        errors=(1e-2, 1e-4, 1e-6, 0.0), epochs=50,
    )
    base.update(kw)
    return CampaignConfig(**base)


class TestCampaignProtocols:
    def test_markov_path_unchanged_by_trajectory_flag(self):
        """Recording a trajectory must not perturb the RNG stream."""
        a = run_campaign(config(), seed=11)
        b = run_campaign(config(), seed=11, record_trajectory=True)
        assert (a.requests, a.error_sum, a.blackout, a.levels_histogram) == (
            b.requests, b.error_sum, b.blackout, b.levels_histogram
        )
        assert len(b.trajectory) == 50 and not a.trajectory

    def test_fault_plan_windows_become_epoch_windows(self):
        sched = MaintenanceSchedule()
        sched.add_window(2, 10, 20)
        sched.add_window(5, 15, 25)
        plan = FaultPlan.from_schedule(sched, sites=("system.outage",), seed=3)
        assert plan_outages_at_epoch(plan, 5, 8) == []
        assert plan_outages_at_epoch(plan, 12, 8) == [2]
        assert plan_outages_at_epoch(plan, 17, 8) == [2, 5]
        assert plan_outages_at_epoch(plan, 22, 8) == [5]
        stats = run_campaign(config(epochs=30), failure_model=plan)
        assert stats.max_concurrent_failures == 2

    def test_correlated_model_draws_fresh_each_epoch(self):
        mk = lambda: CorrelatedFailureModel(
            [[0, 1], [2, 3], [4, 5], [6, 7]],
            p_region=0.2, p_single=0.05, seed=9,
        )
        a = run_campaign(config(), failure_model=mk(), record_trajectory=True)
        b = run_campaign(config(), failure_model=mk(), record_trajectory=True)
        assert a.trajectory == b.trajectory
        assert a.max_concurrent_failures >= 2  # a region went down together

    def test_callable_failure_model(self):
        stats = run_campaign(
            config(epochs=10),
            failure_model=lambda epoch, n: [0, 1] if epoch == 4 else [],
            record_trajectory=True,
        )
        assert [r["failed"] for r in stats.trajectory].count(2) == 1
        assert stats.max_concurrent_failures == 2

    def test_step_hook_reconfigures_mid_campaign(self):
        def hook(epoch, failed, ms):
            return (5, 4, 3, 2) if epoch == 20 else None

        stats = run_campaign(
            config(), failure_model=lambda e, n: [],
            step_hook=hook, record_trajectory=True,
        )
        assert stats.trajectory[19]["ms"] == [4, 3, 2, 1]
        assert stats.trajectory[20]["ms"] == [5, 4, 3, 2]
        assert stats.trajectory[49]["ms"] == [5, 4, 3, 2]

    def test_step_hook_bad_ms_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(
                config(epochs=2),
                failure_model=lambda e, n: [],
                step_hook=lambda e, f, ms: (3, 3, 2, 1),
            )
        with pytest.raises(ValueError):
            run_campaign(
                config(epochs=2),
                failure_model=lambda e, n: [],
                step_hook=lambda e, f, ms: (4, 3, 2),
            )


class TestLongestRun:
    def test_runs(self):
        assert _longest_run([]) == 0
        assert _longest_run([4]) == 1
        assert _longest_run([1, 2, 3, 7, 8]) == 3
        assert _longest_run([1, 3, 5]) == 1


class TestScenarioSuite:
    def test_catalog_shape(self):
        assert set(SCENARIOS) == {
            "region-loss", "bandwidth-drift", "flash-crowd", "correlated",
        }
        for spec in SCENARIOS.values():
            assert spec.epochs >= 16 and spec.n == 8

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_byte_identical_across_runs(self, name):
        """The determinism contract: same seed, same bytes."""
        a = scenario_json(run_scenario(name, seed=7, epochs=12))
        b = scenario_json(run_scenario(name, seed=7, epochs=12))
        assert a == b

    def test_seed_changes_artifact(self):
        a = scenario_json(run_scenario("correlated", seed=7, epochs=12))
        b = scenario_json(run_scenario("correlated", seed=8, epochs=12))
        assert a != b

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_no_safety_breaches(self, name):
        res = run_scenario(name, seed=7, epochs=16)
        assert res["ok"] is True
        assert res["breach_epochs"] == []
        assert res["max_breach_run"] == 0
        assert res["campaign"]["availability"] == 1.0

    def test_flash_crowd_promotes_hot_object(self):
        res = run_scenario("flash-crowd", seed=7)
        before = res["objects"]["primary"]["initial_ms"]
        after = res["objects"]["primary"]["final_ms"]
        assert sum(after) > sum(before), "hot object must gain parity"
        reconfigs = [
            e for e in res["operator_events"] if e["action"] == "reconfigure"
        ]
        assert reconfigs

    def test_region_loss_heals(self):
        res = run_scenario("region-loss", seed=7)
        assert sum(e.get("healed", 0) for e in res["operator_events"]) >= 1

    def test_artifact_is_json_safe(self):
        res = run_scenario("bandwidth-drift", seed=7, epochs=12)
        parsed = json.loads(scenario_json(res))
        assert parsed == res
        row = parsed["trajectory"][0]
        for key in ("epoch", "failed", "action", "ms", "overhead", "breaches"):
            assert key in row


class TestScenarioCLI:
    def test_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario(self, capsys):
        assert main(["scenarios", "--scenario", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_with_replay_verification(self, tmp_path, capsys):
        rc = main([
            "scenarios", "--scenario", "flash-crowd", "--epochs", "12",
            "--seed", "7", "--verify-replay", "--json",
            "--outdir", str(tmp_path),
        ])
        assert rc == 0
        res = json.loads(capsys.readouterr().out)
        assert res["ok"] is True and res["scenario"] == "flash-crowd"
        artifact = tmp_path / "flash-crowd-seed7.json"
        assert artifact.exists()
        assert json.loads(artifact.read_text()) == res

    def test_human_summary(self, capsys):
        rc = main([
            "scenarios", "--scenario", "correlated", "--epochs", "12",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "correlated" in out and "OK" in out