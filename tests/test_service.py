"""The archive service's robustness contracts, property-tested.

The four invariants ISSUE 10 names, each checked deterministically:

1. **Exactly-once keyed prepare** — duplicate submissions with one
   idempotency key mutate the workspace once and replay the recorded
   result, including after a crash between the journal write and the
   commit (the replayed workspace is byte-identical to a clean run's).
2. **Bulkhead isolation** — a tenant saturating its worker-slot quota
   never blocks another tenant's admitted requests; the round-robin
   dequeue serves whoever has slot headroom.
3. **Shed-never-hangs** — a request the service cannot admit is
   rejected promptly with a typed reason and retry-after hint; nothing
   buffers without bound.
4. **Deterministic replay** — a seeded overload-plus-outage campaign
   over the service produces byte-identical results, shed sequences and
   metrics on every run.

Unit tests for the clock/deadline/token-bucket/breaker plumbing ride
along.
"""

import hashlib
import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer
from repro.service import (
    AdmissionQueue,
    ArchiveService,
    Bulkhead,
    CircuitBreaker,
    Deadline,
    IdempotencyConflict,
    ManualClock,
    RequestJournal,
    ServiceConfig,
    ServiceRejected,
    ServiceRequest,
    TokenBucket,
    TrafficMix,
    drive_open_loop,
    make_schedule,
)
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile

N_SYSTEMS = 8


def make_stack(tmp):
    cluster = StorageCluster(paper_bandwidth_profile(N_SYSTEMS))
    catalog = MetadataCatalog(tmp / "meta")
    return RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.3)


def make_service(rapids, **overrides):
    clk = overrides.pop("clock", None) or ManualClock()
    cfg = ServiceConfig(clock=clk, rate=10_000.0, burst=10_000.0, **overrides)
    return ArchiveService(rapids, config=cfg), clk


def small_field(seed=0, shape=(16, 16, 16)):
    """A compressible field (smooth + 5% noise); pure noise is not
    refactorable and the FT optimizer rejects it as infeasible."""
    rng = np.random.default_rng(seed)
    axes = [np.linspace(0.0, 1.0, n) for n in shape]
    field = (
        np.sin(5.0 * np.pi * axes[0])[:, None, None]
        * np.cos(3.0 * np.pi * axes[1])[None, :, None]
        * np.sin(2.0 * np.pi * axes[2])[None, None, :]
    )
    return (field + 0.05 * rng.normal(size=shape)).astype(np.float32)


def workspace_digest(rapids, name: str) -> str:
    """Byte-level fingerprint of one object's workspace: every fragment
    on every system plus its catalog record."""
    h = hashlib.sha256()
    rec = rapids.catalog.get_object(name)
    h.update(json.dumps(rec.level_sizes).encode())
    h.update(json.dumps(rec.ft_config).encode())
    for j in range(len(rec.level_sizes)):
        sname = rec.level_storage_name(j)
        for i in sorted(rapids.cluster.locate(sname, j)):
            sf = rapids.cluster.fetch(sname, j, i)
            h.update(f"{j}/{i}/".encode())
            h.update(bytes(sf.payload))
    return h.hexdigest()


# -- plumbing unit tests ----------------------------------------------------


class TestClockAndDeadline:
    def test_manual_clock_advances(self):
        clk = ManualClock()
        assert clk() == 0.0
        clk.advance(2.5)
        assert clk() == 2.5
        with pytest.raises(ValueError):
            clk.advance(-1)

    def test_deadline_remaining_and_expiry(self):
        clk = ManualClock()
        d = Deadline(3.0, clock=clk)
        assert d.remaining() == 3.0 and not d.expired
        clk.advance(3.0)
        assert d.remaining() == 0.0 and d.expired

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            Deadline()  # neither seconds nor at
        with pytest.raises(ValueError):
            Deadline(2.0, at=5.0)  # both


class TestTokenBucket:
    def test_burst_then_refill(self):
        clk = ManualClock()
        b = TokenBucket(rate=2.0, burst=2.0, clock=clk)
        assert b.try_acquire() == 0.0
        assert b.try_acquire() == 0.0
        wait = b.try_acquire()
        assert wait == pytest.approx(0.5)
        clk.advance(wait)
        assert b.try_acquire() == 0.0

    @given(st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_burst(self, seed):
        rng = np.random.default_rng(seed)
        clk = ManualClock()
        b = TokenBucket(rate=5.0, burst=3.0, clock=clk)
        granted_in_burst = 0
        for _ in range(10):
            if b.try_acquire() == 0.0:
                granted_in_burst += 1
            clk.advance(float(rng.uniform(0, 0.05)))
        # 10 tries over < 0.5s: at most burst + rate * elapsed grants.
        assert granted_in_burst <= 3 + int(5.0 * 0.5) + 1


class TestCircuitBreaker:
    def test_trip_halfopen_close_cycle(self):
        clk = ManualClock()
        br = CircuitBreaker(threshold=2, reset_after=10.0, clock=clk)
        assert br.allow()
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open" and not br.allow()
        clk.advance(10.0)
        assert br.state == "half-open" and br.allow()
        br.record_failure()  # probe fails: straight back to open
        assert br.state == "open"
        clk.advance(10.0)
        br.record_success()
        assert br.state == "closed"


class TestJournal:
    def test_key_reuse_for_different_request_conflicts(self, tmp_path):
        rapids = make_stack(tmp_path)
        j = RequestJournal(rapids.catalog.store)
        j.begin("t", "k", op="prepare", name="a", fingerprint="fp-a")
        with pytest.raises(IdempotencyConflict):
            j.begin("t", "k", op="prepare", name="b", fingerprint="fp-b")

    def test_pending_worklist(self, tmp_path):
        rapids = make_stack(tmp_path)
        j = RequestJournal(rapids.catalog.store)
        j.begin("t", "k1", op="prepare", name="a", fingerprint="f1")
        j.begin("t", "k2", op="prepare", name="b", fingerprint="f2")
        j.commit("t", "k2", fingerprint="f2", op="prepare", name="b",
                 result={})
        assert j.pending() == [("t", "k1")]


# -- invariant 1: exactly-once keyed prepare --------------------------------


class TestExactlyOnce:
    @pytest.fixture(scope="class")
    def stack(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("svc-once")
        rapids = make_stack(tmp)
        svc, clk = make_service(rapids)
        return rapids, svc

    @given(n_dups=st.integers(1, 4), seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_duplicates_mutate_workspace_once(self, stack, n_dups, seed):
        rapids, svc = stack
        name = f"once/{seed}/{n_dups}"
        key = f"key-{seed}-{n_dups}"
        data = small_field(seed)
        first = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name=name, data=data,
            idempotency_key=key,
        ))
        svc.pump()
        assert first.result(timeout=0).status == "ok"
        digest = workspace_digest(rapids, name)
        for _ in range(n_dups):
            dup = svc.submit(ServiceRequest(
                tenant="a", op="prepare", name=name, data=data,
                idempotency_key=key,
            ))
            svc.pump()
            res = dup.result(timeout=0)
            assert res.status == "cached" and res.replayed
            assert res.levels_used == first.result(timeout=0).levels_used
        assert workspace_digest(rapids, name) == digest

    def test_inflight_duplicates_coalesce_onto_one_ticket(self, stack):
        rapids, svc = stack
        data = small_field(7)
        reqs = [
            ServiceRequest(tenant="a", op="prepare", name="once/coalesce",
                           data=data, idempotency_key="co-key")
            for _ in range(3)
        ]
        tickets = [svc.submit(r) for r in reqs]
        assert tickets[1] is tickets[0] and tickets[2] is tickets[0]
        assert tickets[0].coalesced == 2
        assert svc.queue.depth() == 1  # duplicates consumed no capacity
        svc.pump()
        assert tickets[0].result(timeout=0).status == "ok"

    def test_conflicting_key_reuse_is_typed_failure(self, stack):
        rapids, svc = stack
        t1 = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="once/conflict-a",
            data=small_field(1), idempotency_key="conflict-key",
        ))
        svc.pump()
        assert t1.result(timeout=0).status == "ok"
        t2 = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="once/conflict-b",
            data=small_field(2), idempotency_key="conflict-key",
        ))
        svc.pump()
        res = t2.result(timeout=0)
        assert res.status == "failed"
        assert "IdempotencyConflict" in res.error


class TestCrashReplay:
    def test_crash_between_journal_and_commit_replays_byte_identical(
        self, tmp_path
    ):
        data = small_field(42)

        # Reference: one clean keyed prepare on its own stack.
        clean = make_stack(tmp_path / "clean")
        clean_svc, _ = make_service(clean)
        t = clean_svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=data,
            idempotency_key="k",
        ))
        clean_svc.pump()
        assert t.result(timeout=0).status == "ok"
        want = workspace_digest(clean, "obj")

        # Crashing run: the journal *commit* (state=done) faults after
        # the pipeline mutated the workspace — the classic crash between
        # execution and acknowledgment.
        rapids = make_stack(tmp_path / "crash")
        svc, _ = make_service(rapids)
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(site="service.journal", effect="error",
                      where={"state": "done"}, max_fires=1),
        ))
        svc.attach_injector(FaultInjector(plan))
        t1 = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=data,
            idempotency_key="k",
        ))
        svc.pump()
        r1 = t1.result(timeout=0)
        assert r1.status == "failed" and "InjectedFault" in r1.error
        entry = svc.journal.lookup("a", "k")
        assert entry is not None and entry.state == "pending"

        # Retry with the same key: the pending entry forces re-execution
        # over the partial state; the prepare converges and commits.
        svc.attach_injector(None)
        t2 = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=data,
            idempotency_key="k",
        ))
        svc.pump()
        assert t2.result(timeout=0).status == "ok"
        assert svc.journal.lookup("a", "k").state == "done"
        assert workspace_digest(rapids, "obj") == want

        # And a third submission is served from the journal, no rerun.
        t3 = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=data,
            idempotency_key="k",
        ))
        svc.pump()
        assert t3.result(timeout=0).status == "cached"
        assert workspace_digest(rapids, "obj") == want


# -- invariant 2: bulkhead isolation ----------------------------------------


class TestBulkhead:
    @given(
        counts=st.dictionaries(
            st.sampled_from(["a", "b", "c"]), st.integers(1, 5), min_size=2
        ),
        quota=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_saturated_tenant_never_blocks_others(self, counts, quota):
        q = AdmissionQueue(capacity=100)
        bh = Bulkhead(quota)
        for tenant in sorted(counts):
            for _ in range(counts[tenant]):
                q.offer(
                    ServiceRequest(tenant=tenant, op="restore", name="x"),
                    retry_after=0.1,
                )
        hog = sorted(counts)[0]
        for _ in range(quota):  # saturate the hog's slots out-of-band
            assert bh.try_acquire(hog)
        others = sum(n for t, n in counts.items() if t != hog)
        for _ in range(others):
            req = q.take(bh, timeout=0)
            assert req is not None, "a tenant with free slots was starved"
            assert req.tenant != hog
            bh.release(req.tenant)
        # Only the hog remains queued and it is at quota: the take must
        # return promptly with nothing rather than block.
        assert q.take(bh, timeout=0) is None
        bh.release(hog)  # headroom appears -> the hog is served again
        assert q.take(bh, timeout=0).tenant == hog

    def test_round_robin_interleaves_tenants(self, tmp_path):
        rapids = make_stack(tmp_path)
        svc, _ = make_service(rapids, queue_capacity=32)
        prep = svc.submit(ServiceRequest(
            tenant="b", op="prepare", name="obj", data=small_field(0)
        ))
        svc.pump()
        assert prep.result(timeout=0).status == "ok"
        # Tenant a floods 6 restores before b submits 2; round-robin
        # still serves both of b's within the first four executions.
        for _ in range(6):
            svc.submit(ServiceRequest(tenant="a", op="restore", name="obj"))
        b1 = svc.submit(ServiceRequest(tenant="b", op="restore", name="obj"))
        b2 = svc.submit(ServiceRequest(tenant="b", op="restore", name="obj"))
        svc.pump(4)
        assert b1.done and b2.done
        svc.pump()


# -- invariant 3: shed-never-hangs ------------------------------------------


class TestShedding:
    @given(capacity=st.integers(1, 6), extra=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_overflow_rejects_promptly_with_retry_after(
        self, capacity, extra
    ):
        q = AdmissionQueue(capacity=capacity)
        for i in range(capacity):
            q.offer(
                ServiceRequest(tenant="t", op="restore", name="x"),
                retry_after=0.2,
            )
        for _ in range(extra):
            t0 = time.perf_counter()
            with pytest.raises(ServiceRejected) as exc:
                q.offer(
                    ServiceRequest(tenant="t", op="restore", name="x"),
                    retry_after=0.2,
                )
            assert time.perf_counter() - t0 < 0.5  # prompt, not parked
            assert exc.value.reason == "queue-full"
            assert exc.value.retry_after >= 0.0
        assert q.depth() == capacity  # nothing buffered past the bound

    def test_rate_limit_shed_carries_refill_hint(self, tmp_path):
        rapids = make_stack(tmp_path)
        clk = ManualClock()
        svc = ArchiveService(rapids, config=ServiceConfig(
            clock=clk, rate=1.0, burst=1.0, queue_capacity=8,
        ))
        svc.submit(ServiceRequest(tenant="t", op="restore", name="x"))
        with pytest.raises(ServiceRejected) as exc:
            svc.submit(ServiceRequest(tenant="t", op="restore", name="x"))
        assert exc.value.reason == "rate-limited"
        assert exc.value.retry_after == pytest.approx(1.0)
        assert svc.snapshot()["shed"] == {"rate-limited": 1}

    def test_shutdown_sheds_typed(self, tmp_path):
        rapids = make_stack(tmp_path)
        svc, _ = make_service(rapids)
        svc.queue.close()
        with pytest.raises(ServiceRejected) as exc:
            svc.submit(ServiceRequest(tenant="t", op="restore", name="x"))
        assert exc.value.reason == "shutdown"


# -- deadline propagation ---------------------------------------------------


class TestDeadlines:
    @pytest.fixture()
    def prepared(self, tmp_path):
        rapids = make_stack(tmp_path)
        svc, clk = make_service(rapids, queue_capacity=16)
        t = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=small_field(5)
        ))
        svc.pump()
        assert t.result(timeout=0).status == "ok"
        return rapids, svc, clk

    def test_expired_in_queue_returns_typed_deadline(self, prepared):
        rapids, svc, clk = prepared
        t = svc.submit(ServiceRequest(
            tenant="a", op="restore", name="obj",
            deadline=Deadline(0.5, clock=clk),
        ))
        clk.advance(1.0)  # deadline lapses while queued
        svc.pump()
        res = t.result(timeout=0)
        assert res.status == "deadline" and not res.deadline_met

    def test_tight_deadline_degrades_to_affordable_prefix(self, prepared):
        rapids, svc, clk = prepared
        full = svc.submit(ServiceRequest(tenant="a", op="restore", name="obj"))
        svc.pump()
        n_levels = full.result(timeout=0).levels_used
        t = svc.submit(ServiceRequest(
            tenant="a", op="restore", name="obj",
            deadline=Deadline(1e-9, clock=clk),
        ))
        svc.pump()
        res = t.result(timeout=0)
        assert res.status == "degraded"
        assert res.extra.get("deadline_limited")
        assert 1 <= res.levels_used < n_levels


# -- invariant 4: deterministic overload campaign ---------------------------


def overload_campaign(tmp, seed: int) -> str:
    """One seeded overload-plus-outage run; returns its full transcript
    as canonical JSON (results, sheds, metrics, fault log)."""
    rapids = make_stack(tmp)
    clk = ManualClock()
    svc = ArchiveService(rapids, config=ServiceConfig(
        clock=clk, queue_capacity=12, rate=10_000.0, burst=10_000.0,
        bulkhead_slots=2, deadline_safety=0.8,
    ))
    # Seed objects for the restore side of the mix.
    objects = []
    for i in range(2):
        name = f"base/{i}"
        t = svc.submit(ServiceRequest(
            tenant="setup", op="prepare", name=name, data=small_field(i)
        ))
        svc.pump()
        assert t.result(timeout=0).status == "ok"
        objects.append(name)

    plan = FaultPlan(seed=seed, specs=(
        FaultSpec(site="system.outage", effect="outage",
                  where={"system_id": 1}),
        FaultSpec(site="service.admit", effect="error",
                  probability=0.15),
        FaultSpec(site="service.dequeue", effect="error",
                  probability=0.05),
        FaultSpec(site="service.journal", effect="error",
                  probability=0.2, where={"state": "done"}),
        FaultSpec(site="storage.read", effect="error",
                  probability=0.3, where={"system_id": 3}),
    ))
    injector = FaultInjector(plan)
    svc.attach_injector(injector)
    rapids.attach_injector(injector)
    injector.apply_outages(rapids.cluster)

    mix = TrafficMix(
        name="overload",
        tenants={"hog": 4.0, "steady": 1.0},
        restore_fraction=0.7,
        mean_interarrival=0.01,
        deadline=2.0,
    )
    schedule = make_schedule(mix, objects=objects, count=40, seed=seed)
    report = drive_open_loop(
        svc, clk, schedule, mix_name=mix.name, seed=seed,
        pump_interval=3, pump_batch=1, service_tick=0.05,
    )

    # Acceptance: every admitted request resolved with a typed status,
    # and anything past its deadline is degraded/typed, never hung.
    for r in report.results:
        assert r.status in ("ok", "degraded", "cached", "deadline", "failed")
        if not r.deadline_met:
            assert r.status in ("degraded", "deadline", "failed")
    assert svc.queue.depth() == 0

    transcript = {
        "summary": report.summary(),
        "results": [r.to_dict() for r in report.results],
        "sheds": report.sheds,
        "metrics": svc.snapshot(),
        "faults": [
            f"{rec.site}:{rec.effect}#{rec.occurrence}"
            for rec in injector.log
        ],
    }
    return json.dumps(transcript, sort_keys=True)


class TestDeterministicReplay:
    @pytest.mark.parametrize("seed", [7, 1234])
    def test_campaign_replays_byte_identical(self, tmp_path, seed):
        a = overload_campaign(tmp_path / "a", seed)
        b = overload_campaign(tmp_path / "b", seed)
        assert a == b

    def test_different_seeds_diverge(self, tmp_path):
        a = overload_campaign(tmp_path / "a", 7)
        b = overload_campaign(tmp_path / "b", 8)
        assert a != b

    def test_no_cross_tenant_starvation_under_overload(self, tmp_path):
        transcript = json.loads(overload_campaign(tmp_path / "s", 7))
        by_tenant = transcript["summary"]["by_tenant"]
        # The steady tenant keeps completing even while the hog floods.
        assert by_tenant.get("steady", {}).get("completed", 0) > 0
        assert by_tenant.get("hog", {}).get("completed", 0) > 0


# -- threaded mode smoke ----------------------------------------------------


class TestThreadedService:
    def test_start_serve_stop_clean(self, tmp_path):
        rapids = make_stack(tmp_path)
        svc = ArchiveService(rapids, config=ServiceConfig(
            queue_capacity=32, rate=10_000.0, burst=10_000.0,
            workers=2, poll_interval=0.01,
        ))
        prep = svc.submit(ServiceRequest(
            tenant="a", op="prepare", name="obj", data=small_field(3)
        ))
        svc.start()
        assert prep.result(timeout=30.0).status == "ok"
        tickets = [
            svc.submit(ServiceRequest(tenant=t, op="restore", name="obj"))
            for t in ("a", "b", "a", "b")
        ]
        results = [t.result(timeout=30.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        svc.stop()
        assert svc.queue.depth() == 0
