"""Unit and property tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import gf256

bytes_st = st.integers(min_value=0, max_value=255)
nonzero_st = st.integers(min_value=1, max_value=255)


def test_exp_log_roundtrip():
    for x in range(1, 256):
        assert gf256.EXP_TABLE[gf256.LOG_TABLE[x]] == x


def test_exp_table_doubled():
    assert np.array_equal(gf256.EXP_TABLE[:255], gf256.EXP_TABLE[255:510])


def test_mul_by_zero_and_one():
    xs = np.arange(256, dtype=np.uint8)
    assert np.all(gf256.mul(xs, np.uint8(0)) == 0)
    assert np.array_equal(gf256.mul(xs, np.uint8(1)), xs)


def test_mul_matches_reference():
    """Cross-check table multiplication against carry-less reference."""

    def ref_mul(a: int, b: int) -> int:
        r = 0
        while b:
            if b & 1:
                r ^= a
            a <<= 1
            if a & 0x100:
                a ^= gf256.PRIMITIVE_POLY
            b >>= 1
        return r

    rng = np.random.default_rng(0)
    for _ in range(500):
        a = int(rng.integers(0, 256))
        b = int(rng.integers(0, 256))
        assert int(gf256.mul(a, b)) == ref_mul(a, b)


@given(bytes_st, bytes_st)
def test_mul_commutative(a, b):
    assert gf256.mul(a, b) == gf256.mul(b, a)


@given(bytes_st, bytes_st, bytes_st)
def test_mul_associative(a, b, c):
    assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))


@given(bytes_st, bytes_st, bytes_st)
def test_distributive(a, b, c):
    lhs = gf256.mul(a, gf256.add(b, c))
    rhs = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
    assert lhs == rhs


@given(nonzero_st)
def test_inverse(a):
    assert gf256.mul(a, gf256.inv(a)) == 1


@given(bytes_st, nonzero_st)
def test_div_is_mul_by_inverse(a, b):
    assert gf256.div(a, b) == gf256.mul(a, gf256.inv(b))


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf256.div(5, 0)
    with pytest.raises(ZeroDivisionError):
        gf256.div(np.arange(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))


def test_add_is_self_inverse():
    xs = np.arange(256, dtype=np.uint8)
    assert np.all(gf256.add(xs, xs) == 0)


@given(nonzero_st, st.integers(min_value=0, max_value=600))
def test_pow_matches_repeated_mul(a, n):
    expected = np.uint8(1)
    for _ in range(n % 255):
        expected = gf256.mul(expected, a)
    # a^n == a^(n mod 255) for nonzero a (multiplicative group order 255)
    assert gf256.pow_(a, n % 255) == expected


def test_pow_zero_element():
    assert gf256.pow_(0, 0) == 1
    assert gf256.pow_(0, 5) == 0


def test_mul_table_row():
    for c in (0, 1, 2, 37, 255):
        row = gf256.mul_table_row(c)
        xs = np.arange(256, dtype=np.uint8)
        assert np.array_equal(row, gf256.mul(np.uint8(c), xs))


def test_mul_table_row_range():
    with pytest.raises(ValueError):
        gf256.mul_table_row(256)
    with pytest.raises(ValueError):
        gf256.mul_table_row(-1)


def test_full_mul_table_symmetric():
    t = gf256.full_mul_table()
    assert t.shape == (256, 256)
    assert np.array_equal(t, t.T)


def test_array_broadcast_mul():
    a = np.arange(16, dtype=np.uint8).reshape(4, 4)
    b = np.uint8(7)
    out = gf256.mul(a, b)
    assert out.shape == (4, 4)
    assert out[0, 0] == 0
    assert out[0, 1] == gf256.mul(1, 7)


def test_generator_is_primitive():
    """The generator must produce all 255 nonzero elements."""
    seen = set()
    x = np.uint8(1)
    for _ in range(255):
        seen.add(int(x))
        x = gf256.mul(x, gf256.GENERATOR)
    assert len(seen) == 255
