"""Tests for the synthetic dataset generators and Table 2 catalog."""

import numpy as np
import pytest

from repro.datasets import (
    TABLE2,
    gaussian_random_field,
    get_object,
    hurricane_pressure,
    hurricane_temperature,
    nyx_temperature,
    nyx_velocity,
    object_names,
    scale_pressure,
    scale_temperature,
)
from repro.refactor import Refactorer


class TestGRF:
    def test_deterministic(self):
        a = gaussian_random_field((16, 16, 16), seed=3)
        b = gaussian_random_field((16, 16, 16), seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_field(self):
        a = gaussian_random_field((16, 16), seed=0)
        b = gaussian_random_field((16, 16), seed=1)
        assert not np.allclose(a, b)

    def test_normalised(self):
        f = gaussian_random_field((32, 32, 32), seed=0)
        assert abs(float(f.mean())) < 1e-5
        assert float(f.std()) == pytest.approx(1.0, rel=1e-4)

    def test_slope_controls_smoothness(self):
        """Higher slope concentrates energy at large scales, so the mean
        squared gradient (a roughness proxy) must drop."""

        def roughness(f):
            return float(np.mean(np.diff(f, axis=0) ** 2))

        rough = gaussian_random_field((64, 64), slope=1.0, seed=5)
        smooth = gaussian_random_field((64, 64), slope=4.0, seed=5)
        assert roughness(smooth) < roughness(rough)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_random_field((1, 8))
        with pytest.raises(ValueError):
            gaussian_random_field((8, 8), slope=-1)

    def test_dtype(self):
        assert gaussian_random_field((8, 8)).dtype == np.float32


class TestNamedFields:
    @pytest.mark.parametrize(
        "gen",
        [
            nyx_temperature,
            nyx_velocity,
            scale_pressure,
            scale_temperature,
            hurricane_pressure,
            hurricane_temperature,
        ],
    )
    def test_basic_properties(self, gen):
        f = gen((16, 16, 16))
        assert f.shape == (16, 16, 16)
        assert f.dtype == np.float32
        assert np.all(np.isfinite(f))

    def test_nyx_temperature_positive_heavy_tailed(self):
        f = nyx_temperature((32, 32, 32))
        assert np.all(f > 0)
        assert float(f.max()) / float(np.median(f)) > 3

    def test_scale_pressure_stratified(self):
        f = scale_pressure((32, 16, 16))
        col_means = f.mean(axis=(1, 2))
        assert col_means[0] > col_means[-1] * 1.5

    def test_hurricane_pressure_has_low_core(self):
        f = hurricane_pressure((16, 64, 64))
        ambient = np.percentile(f, 90)
        assert float(f.min()) < ambient - 3000

    def test_all_fields_refactor_well(self):
        """Every generator's output must compress with the hierarchical
        structure RAPIDS requires (s increasing, e decreasing)."""
        r = Refactorer(4)
        for obj in TABLE2:
            field = obj.proxy((17, 17, 17))
            out = r.refactor(field.astype(np.float32))
            assert out.sizes == sorted(out.sizes), obj.full_name
            assert out.errors == sorted(out.errors, reverse=True), obj.full_name


class TestCatalog:
    def test_six_objects(self):
        assert len(TABLE2) == 6
        assert len(object_names()) == 6

    def test_paper_sizes(self):
        nyx = get_object("NYX:temperature")
        assert nyx.paper_bytes == pytest.approx(16 * 1024**4)
        hur = get_object("hurricane:Pf48.bin")
        assert hur.paper_bytes == pytest.approx(2.98 * 1024**4)

    def test_unknown_object(self):
        with pytest.raises(KeyError):
            get_object("LIGO:strain")

    def test_proxy_seeded(self):
        obj = get_object("SCALE:T")
        a = obj.proxy((8, 8, 8), seed=9)
        b = obj.proxy((8, 8, 8), seed=9)
        np.testing.assert_array_equal(a, b)

    def test_per_core_weak_scaling(self):
        """per-core size x 32768 cores ~ paper total size (Table 2 setup)."""
        for obj in TABLE2:
            total = obj.per_core_bytes * 32768
            assert total == pytest.approx(obj.paper_bytes, rel=0.01), obj.full_name
