"""Tests for refactored-object serialization (directory + archive)."""

import numpy as np
import pytest

from repro.refactor import (
    Refactorer,
    from_archive_bytes,
    load_archive,
    load_directory,
    relative_linf_error,
    save_archive,
    save_directory,
    to_archive_bytes,
)


@pytest.fixture(scope="module")
def obj_and_data():
    x = np.linspace(0, 1, 33)
    data = (
        np.sin(3 * x)[:, None] * np.cos(5 * x)[None, :]
    ).astype(np.float32)
    return Refactorer(3, num_planes=24).refactor(data), data


class TestDirectory:
    def test_roundtrip(self, tmp_path, obj_and_data):
        obj, data = obj_and_data
        save_directory(obj, tmp_path / "out")
        back = load_directory(tmp_path / "out")
        assert back.shape == obj.shape
        assert back.payloads == obj.payloads
        assert back.errors == obj.errors
        r = Refactorer(3)
        assert relative_linf_error(data, r.reconstruct(back)) < 1e-5

    def test_partial_directory_loads(self, tmp_path, obj_and_data):
        """A directory missing trailing components (not yet gathered)
        still loads as a valid prefix."""
        obj, data = obj_and_data
        save_directory(obj, tmp_path / "p")
        (tmp_path / "p" / "component-02.bin").unlink()
        back = load_directory(tmp_path / "p")
        assert len(back.payloads) == 2
        r = Refactorer(3)
        err = relative_linf_error(data, r.reconstruct(back))
        assert err == pytest.approx(obj.errors[1], abs=1e-12)

    def test_upto(self, tmp_path, obj_and_data):
        obj, _ = obj_and_data
        save_directory(obj, tmp_path / "u")
        back = load_directory(tmp_path / "u", upto=1)
        assert len(back.payloads) == 1

    def test_empty_raises(self, tmp_path, obj_and_data):
        obj, _ = obj_and_data
        save_directory(obj, tmp_path / "e")
        for j in range(3):
            (tmp_path / "e" / f"component-{j:02d}.bin").unlink()
        with pytest.raises(FileNotFoundError):
            load_directory(tmp_path / "e")


class TestArchive:
    def test_bytes_roundtrip(self, obj_and_data):
        obj, _ = obj_and_data
        blob = to_archive_bytes(obj)
        back = from_archive_bytes(blob)
        assert back.payloads == obj.payloads
        assert back.plans == obj.plans
        assert back.data_max == obj.data_max

    def test_file_roundtrip(self, tmp_path, obj_and_data):
        obj, data = obj_and_data
        save_archive(obj, tmp_path / "obj.rdc")
        back = load_archive(tmp_path / "obj.rdc")
        r = Refactorer(3)
        np.testing.assert_array_equal(
            r.reconstruct(back), r.reconstruct(obj)
        )

    def test_prefix_load(self, tmp_path, obj_and_data):
        obj, _ = obj_and_data
        save_archive(obj, tmp_path / "a.rdc")
        back = load_archive(tmp_path / "a.rdc", upto=2)
        assert len(back.payloads) == 2
        assert back.errors == obj.errors[:2]

    def test_corrupt_archive_detected(self, tmp_path, obj_and_data):
        from repro.formats import FormatError

        obj, _ = obj_and_data
        blob = bytearray(to_archive_bytes(obj))
        blob[-20] ^= 0xFF
        with pytest.raises(FormatError):
            from_archive_bytes(bytes(blob))

    def test_empty_archive_raises(self):
        from repro.formats import Container

        c = Container({"num_components": 0, "shape": [2], "dtype": "float32",
                       "plans": [], "errors": [], "bounds": [],
                       "data_max": 1.0, "correction": True})
        with pytest.raises(ValueError):
            from_archive_bytes(c.to_bytes())
