"""Hypothesis stateful (model-based) testing of the KV store.

Drives random interleavings of put/get/delete/compact/reopen against a
dict model — the strongest correctness evidence for the storage engine,
because compaction and recovery interact with every other operation.

The chaos rules interleave *injected* crashes with the normal workload:
torn appends (power cut mid-write), fsync failures (write durable but
un-acked), and mid-compaction crashes.  The invariants stay the same —
committed keys must survive every one of them.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan, FaultSpec, InjectedFault
from repro.metadata import KVStore

KEYS = st.binary(min_size=1, max_size=12)
VALUES = st.binary(max_size=64)


class KVStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dir = Path(tempfile.mkdtemp(prefix="kvsm-"))
        # small segments force frequent rollover during the run
        self.store = KVStore(self.dir / "db", segment_bytes=2048)
        self.model: dict[bytes, bytes] = {}

    keys = Bundle("keys")

    @rule(target=keys, key=KEYS)
    def new_key(self, key):
        return key

    @rule(key=keys, value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete(self, key):
        existed = self.store.delete(key)
        assert existed == (key in self.model)
        self.model.pop(key, None)

    @rule()
    def compact(self):
        self.store.compact()

    @rule()
    def reopen(self):
        """Simulate a clean process restart."""
        self.store.close()
        self.store = KVStore(self.dir / "db", segment_bytes=2048)

    # -- injected-fault rules (repro.chaos seam) -------------------------

    @staticmethod
    def _one_shot(site: str, effect: str, magnitude: float = 0.5) -> FaultInjector:
        return FaultInjector(FaultPlan(seed=1, specs=(
            FaultSpec(site=site, effect=effect, max_fires=1,
                      scope="site", magnitude=magnitude),
        )))

    @rule(key=keys, value=VALUES, magnitude=st.floats(0.0, 1.0))
    def torn_put_crashes_then_recovers(self, key, value, magnitude):
        """A power cut mid-append loses the un-acked put, nothing else."""
        self.store.attach_injector(self._one_shot("kvstore.put", "torn", magnitude))
        try:
            with pytest.raises(InjectedFault):
                self.store.put(key, value)
        finally:
            self.store.attach_injector(None)
        # the store is crashed: every op refuses until reopened
        with pytest.raises(RuntimeError):
            self.store.get(key)
        with pytest.raises(RuntimeError):
            self.store.put(key, value)
        self.reopen()
        # replay truncated the torn tail: committed keys intact, the
        # un-acknowledged put is gone
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys, value=VALUES)
    def fsync_failure_is_ambiguous_until_reopen(self, key, value):
        """A write that fails *after* hitting the disk: invisible to the
        live index (the put was never acked), surfaced by recovery."""
        self.store.attach_injector(self._one_shot("kvstore.fsync", "error"))
        try:
            with pytest.raises(InjectedFault):
                self.store.put(key, value)
        finally:
            self.store.attach_injector(None)
        # live view: un-acked write invisible, store still serving
        assert self.store.get(key) == self.model.get(key)
        # recovery view: the record was durable, so replay surfaces it —
        # the classic fsync ambiguity, resolved deterministically here
        self.reopen()
        assert self.store.get(key) == value
        self.model[key] = value

    @rule()
    def compaction_crash_replays_cleanly(self):
        """A crash mid-compaction loses nothing: old segments are only
        unlinked after the full rewrite, so replay sees old + partial new."""
        if not self.model:
            return
        self.store.attach_injector(self._one_shot("kvstore.put", "error"))
        try:
            with pytest.raises(RuntimeError):
                self.store.compact()
        finally:
            self.store.attach_injector(None)
        self.reopen()

    @invariant()
    def length_matches(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def scan_matches(self):
        assert dict(self.store.scan()) == self.model

    def teardown(self):
        self.store.close()
        shutil.rmtree(self.dir, ignore_errors=True)


KVStoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestKVStoreStateful = KVStoreMachine.TestCase
