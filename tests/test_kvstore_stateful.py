"""Hypothesis stateful (model-based) testing of the KV store.

Drives random interleavings of put/get/delete/compact/reopen against a
dict model — the strongest correctness evidence for the storage engine,
because compaction and recovery interact with every other operation.
"""

import shutil
import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.metadata import KVStore

KEYS = st.binary(min_size=1, max_size=12)
VALUES = st.binary(max_size=64)


class KVStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dir = Path(tempfile.mkdtemp(prefix="kvsm-"))
        # small segments force frequent rollover during the run
        self.store = KVStore(self.dir / "db", segment_bytes=2048)
        self.model: dict[bytes, bytes] = {}

    keys = Bundle("keys")

    @rule(target=keys, key=KEYS)
    def new_key(self, key):
        return key

    @rule(key=keys, value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete(self, key):
        existed = self.store.delete(key)
        assert existed == (key in self.model)
        self.model.pop(key, None)

    @rule()
    def compact(self):
        self.store.compact()

    @rule()
    def reopen(self):
        """Simulate a clean process restart."""
        self.store.close()
        self.store = KVStore(self.dir / "db", segment_bytes=2048)

    @invariant()
    def length_matches(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def scan_matches(self):
        assert dict(self.store.scan()) == self.model

    def teardown(self):
        self.store.close()
        shutil.rmtree(self.dir, ignore_errors=True)


KVStoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestKVStoreStateful = KVStoreMachine.TestCase
