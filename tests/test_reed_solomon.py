"""Unit and property tests for the Reed-Solomon erasure code."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import gf256, matrix
from repro.ec.reed_solomon import RSCode, pad_to_fragments, unpad


class TestMatrix:
    def test_identity_matmul(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, size=(5, 5), dtype=np.uint8)
        assert np.array_equal(matrix.matmul(matrix.identity(5), a), a)
        assert np.array_equal(matrix.matmul(a, matrix.identity(5)), a)

    def test_matmul_shapes(self):
        with pytest.raises(ValueError):
            matrix.matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))
        with pytest.raises(ValueError):
            matrix.matmul(np.zeros(3, np.uint8), np.zeros((3, 3), np.uint8))

    def test_matmul_scalar_agreement(self):
        """Cross-check the vectorised kernel against naive triple loop."""
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, size=(4, 3), dtype=np.uint8)
        b = rng.integers(0, 256, size=(3, 5), dtype=np.uint8)
        got = matrix.matmul(a, b)
        want = np.zeros((4, 5), dtype=np.uint8)
        for i in range(4):
            for j in range(5):
                acc = 0
                for t in range(3):
                    acc ^= int(gf256.mul(a[i, t], b[t, j]))
                want[i, j] = acc
        assert np.array_equal(got, want)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_invert_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        # Rejection-sample an invertible matrix.
        for _ in range(50):
            m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
            try:
                inv = matrix.invert(m)
            except np.linalg.LinAlgError:
                continue
            assert matrix.is_identity(matrix.matmul(m, inv))
            assert matrix.is_identity(matrix.matmul(inv, m))
            return

    def test_invert_singular_raises(self):
        m = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            matrix.invert(m)
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            matrix.invert(m)

    def test_invert_non_square_raises(self):
        with pytest.raises(ValueError):
            matrix.invert(np.zeros((2, 3), dtype=np.uint8))

    def test_vandermonde_any_k_rows_invertible(self):
        v = matrix.vandermonde(8, 4)
        for rows in itertools.combinations(range(8), 4):
            matrix.invert(v[list(rows)])  # must not raise

    def test_vandermonde_too_many_points(self):
        with pytest.raises(ValueError):
            matrix.vandermonde(257, 4)


class TestPadding:
    def test_pad_unpad_roundtrip(self):
        data = b"hello scientific world"
        shards = pad_to_fragments(data, 5)
        assert shards.shape[0] == 5
        assert unpad(shards) == data

    def test_pad_empty(self):
        shards = pad_to_fragments(b"", 3)
        assert unpad(shards) == b""

    def test_pad_exact_multiple(self):
        data = bytes(range(16))
        shards = pad_to_fragments(data, 4)
        assert shards.shape == (4, 6)  # (16 + 8) / 4
        assert unpad(shards) == data

    def test_unpad_corrupt_header(self):
        shards = pad_to_fragments(b"abc", 2)
        flat = shards.reshape(-1).copy()
        flat[:8] = np.frombuffer(np.uint64(10**9).tobytes(), dtype=np.uint8)
        with pytest.raises(ValueError):
            unpad(flat.reshape(shards.shape))

    @given(st.binary(min_size=0, max_size=500), st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data, k):
        assert unpad(pad_to_fragments(data, k)) == data


class TestRSCode:
    def test_validation(self):
        with pytest.raises(ValueError):
            RSCode(0, 2)
        with pytest.raises(ValueError):
            RSCode(4, -1)
        with pytest.raises(ValueError):
            RSCode(200, 100)

    def test_systematic_property(self):
        code = RSCode(4, 2)
        data = bytes(range(64))
        frags = code.encode(data)
        assert len(frags) == 6
        shards = pad_to_fragments(data, 4)
        for i in range(4):
            assert np.array_equal(frags[i], shards[i])

    def test_zero_parity(self):
        code = RSCode(3, 0)
        data = b"x" * 30
        frags = code.encode(data)
        assert len(frags) == 3
        assert code.decode({i: f for i, f in enumerate(frags)}) == data

    def test_decode_all_combinations(self):
        code = RSCode(4, 3)
        data = np.random.default_rng(3).integers(0, 256, 200, dtype=np.uint8).tobytes()
        frags = code.encode(data)
        for subset in itertools.combinations(range(7), 4):
            got = code.decode({i: frags[i] for i in subset})
            assert got == data, f"failed for subset {subset}"

    def test_decode_insufficient(self):
        code = RSCode(4, 2)
        frags = code.encode(b"payload")
        with pytest.raises(ValueError):
            code.decode({0: frags[0], 1: frags[1], 2: frags[2]})

    def test_decode_bad_index(self):
        code = RSCode(2, 1)
        frags = code.encode(b"ab")
        with pytest.raises(ValueError):
            code.decode({0: frags[0], 7: frags[1]})

    def test_reconstruct_fragment(self):
        code = RSCode(5, 3)
        data = bytes(range(100))
        frags = code.encode(data)
        available = {i: frags[i] for i in (0, 2, 3, 6, 7)}
        for target in range(8):
            rebuilt = code.reconstruct_fragment(available, target)
            assert np.array_equal(rebuilt, frags[target]), target

    def test_reconstruct_bad_target(self):
        code = RSCode(2, 1)
        frags = code.encode(b"zz")
        with pytest.raises(ValueError):
            code.reconstruct_fragment({0: frags[0], 1: frags[1]}, 5)

    @given(
        st.binary(min_size=1, max_size=300),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_mds_property(self, data, k, m, seed):
        """Any k of n fragments recover the payload exactly."""
        code = RSCode(k, m)
        frags = code.encode(data)
        rng = np.random.default_rng(seed)
        keep = sorted(rng.choice(k + m, size=k, replace=False).tolist())
        assert code.decode({i: frags[i] for i in keep}) == data

    def test_fragment_sizes_equal(self):
        code = RSCode(4, 2)
        frags = code.encode(b"q" * 101)
        sizes = {f.nbytes for f in frags}
        assert len(sizes) == 1

    def test_generator_readonly(self):
        code = RSCode(3, 2)
        with pytest.raises(ValueError):
            code.generator[0, 0] = 1

    def test_encode_shards(self):
        code = RSCode(3, 2)
        shards = np.arange(30, dtype=np.uint8).reshape(3, 10)
        out = code.encode_shards(shards)
        assert out.shape == (5, 10)
        assert np.array_equal(out[:3], shards)
        with pytest.raises(ValueError):
            code.encode_shards(np.zeros((4, 10), np.uint8))
