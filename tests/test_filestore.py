"""Tests for the file-backed storage cluster and CLI workflows on it."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import relative_linf_error
from repro.storage import FileStorageCluster, StoredFragment, UnavailableError


@pytest.fixture
def cluster(tmp_path):
    return FileStorageCluster(tmp_path / "cl", bandwidths=[1e9] * 6)


class TestFileSystemBackend:
    def test_put_get_roundtrip(self, cluster):
        cluster[0].put(StoredFragment("obj:a", 1, 2, 5, b"hello"))
        got = cluster[0].get("obj:a", 1, 2)
        assert got.payload == b"hello"
        assert got.object_name == "obj:a"
        assert got.level == 1 and got.index == 2

    def test_requires_payload(self, cluster):
        with pytest.raises(ValueError):
            cluster[0].put(StoredFragment("o", 0, 0, 10, None))

    def test_missing_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster[0].get("ghost", 0, 0)
        with pytest.raises(KeyError):
            cluster[0].delete("ghost", 0, 0)

    def test_availability_marker(self, cluster):
        cluster[1].put(StoredFragment("o", 0, 0, 1, b"x"))
        cluster.fail([1])
        assert cluster.failed_ids() == [1]
        with pytest.raises(UnavailableError):
            cluster[1].get("o", 0, 0)
        cluster.restore_all()
        assert cluster[1].get("o", 0, 0).payload == b"x"

    def test_persistence_across_reopen(self, tmp_path):
        c1 = FileStorageCluster(tmp_path / "p", bandwidths=[1e9, 2e9])
        c1.place_level("obj", 0, [b"a", b"b"])
        c1.fail([0])
        c2 = FileStorageCluster(tmp_path / "p")  # reopen from cluster.json
        assert c2.n == 2
        assert c2.bandwidths[1] == 2e9
        assert c2.failed_ids() == [0]
        assert c2.fetch("obj", 0, 1).payload == b"b"

    def test_open_missing_without_config(self, tmp_path):
        with pytest.raises(ValueError):
            FileStorageCluster(tmp_path / "nope")

    def test_locate_and_level_available(self, cluster):
        cluster.place_level("obj", 2, [b"x"] * 6)
        assert cluster.locate("obj", 2) == {i: i for i in range(6)}
        cluster.fail([0, 1])
        assert cluster.level_available("obj", 2, needed=4)
        assert not cluster.level_available("obj", 2, needed=5)

    def test_used_bytes(self, cluster):
        assert cluster.total_stored_bytes() == 0
        cluster.place_level("obj", 0, [b"abcd"] * 3)
        assert cluster.total_stored_bytes() > 0


class TestPipelineOnFiles:
    def test_full_prepare_restore(self, tmp_path):
        x = np.linspace(0, 1, 33)
        data = (
            np.sin(3 * x)[:, None, None]
            * np.cos(2 * x)[None, :, None]
            * np.sin(4 * x)[None, None, :]
        ).astype(np.float32)
        from repro.transfer import paper_bandwidth_profile

        cluster = FileStorageCluster(
            tmp_path / "cl16", bandwidths=paper_bandwidth_profile(16)
        )
        with MetadataCatalog(tmp_path / "meta") as catalog:
            rapids = RAPIDS(cluster, catalog, omega=0.3)
            prep = rapids.prepare("obj", data)
            cluster.fail([0, 2])
            res = rapids.restore("obj", strategy="naive")
            assert res.levels_used == 4
            err = relative_linf_error(data, res.data)
            assert err <= prep.level_errors[-1] + 1e-12


class TestCLIWorkflows:
    def test_prepare_then_restore(self, tmp_path, capsys):
        x = np.linspace(0, 1, 33)
        data = np.outer(np.sin(5 * x), np.cos(3 * x)).astype(np.float32)
        np.save(tmp_path / "field.npy", data)
        ws = str(tmp_path / "ws")
        rc = main([
            "prepare", str(tmp_path / "field.npy"), "demo:field",
            "--workspace", ws, "--omega", "0.3",
        ])
        assert rc == 0
        assert "expected relative error" in capsys.readouterr().out

        out = tmp_path / "back.npy"
        rc = main([
            "restore", "demo:field", str(out),
            "--workspace", ws, "--failed", "1,4,7",
        ])
        assert rc == 0
        back = np.load(out)
        assert back.shape == data.shape
        assert relative_linf_error(data, back) < 1e-3

    def test_restore_with_target_error(self, tmp_path, capsys):
        x = np.linspace(0, 1, 33)
        data = np.outer(np.sin(5 * x), np.cos(3 * x)).astype(np.float32)
        np.save(tmp_path / "f.npy", data)
        ws = str(tmp_path / "ws")
        main(["prepare", str(tmp_path / "f.npy"), "o", "--workspace", ws])
        capsys.readouterr()
        rc = main([
            "restore", "o", str(tmp_path / "o.npy"),
            "--workspace", ws, "--target-error", "0.5",
        ])
        assert rc == 0
        assert "levels used 1" in capsys.readouterr().out

    @staticmethod
    def _field(tmp_path):
        x = np.linspace(0, 1, 33)
        data = np.outer(np.sin(5 * x), np.cos(3 * x)).astype(np.float32)
        data = np.broadcast_to(data, (33, 33, 33)).copy()
        np.save(tmp_path / "f.npy", data)

    def test_restore_under_catastrophe(self, tmp_path, capsys):
        self._field(tmp_path)
        ws = str(tmp_path / "ws")
        assert main(
            ["prepare", str(tmp_path / "f.npy"), "o", "--workspace", ws]
        ) == 0
        rc = main([
            "restore", "o", str(tmp_path / "o.npy"),
            "--workspace", ws, "--failed", ",".join(str(i) for i in range(15)),
        ])
        assert rc == 2

    def test_restore_unknown_object(self, tmp_path, capsys):
        self._field(tmp_path)
        ws = str(tmp_path / "ws")
        assert main(
            ["prepare", str(tmp_path / "f.npy"), "o", "--workspace", ws]
        ) == 0
        rc = main(["restore", "ghost", "x.npy", "--workspace", ws])
        assert rc == 1
