"""Tests for progressive component grouping and serialization."""

import numpy as np
import pytest

from repro.refactor.bitplane import encode_planes
from repro.refactor.components import (
    assemble_planesets,
    component_from_bytes,
    component_to_bytes,
    group_planes,
)


def _sample_planesets(seed=0, groups=3, counts=(10, 50, 200), scales=(10.0, 1.0, 0.1)):
    rng = np.random.default_rng(seed)
    return [
        encode_planes(rng.normal(scale=s, size=c), num_planes=16)
        for c, s in zip(counts, scales)
    ]


class TestGrouping:
    def test_importance_sizes_increase(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 4, policy="importance", size_ratio=4.0)
        sizes = [c.nbytes for c in comps]
        assert len(comps) == 4
        assert sizes[0] < sizes[-1]

    def test_all_planes_assigned_once(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 4)
        seen = set()
        for c in comps:
            for ref, _ in c.entries:
                key = (ref.group, ref.plane)
                assert key not in seen
                seen.add(key)
        assert len(seen) == sum(p.num_planes for p in ps)

    def test_msb_prefix_within_group(self):
        """Across the component sequence, each group's planes appear in
        MSB-first order, so any prefix of components yields a plane prefix."""
        ps = _sample_planesets()
        comps = group_planes(ps, 4)
        last_plane = {}
        for c in comps:
            for ref, _ in c.entries:
                prev = last_plane.get(ref.group, -1)
                assert ref.plane == prev + 1, (ref.group, ref.plane, prev)
                last_plane[ref.group] = ref.plane

    def test_per_level_policy(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 3, policy="per-level")
        for j, c in enumerate(comps):
            assert all(ref.group == j for ref, _ in c.entries)

    def test_per_level_too_many_components(self):
        ps = _sample_planesets()
        with pytest.raises(ValueError):
            group_planes(ps, 10, policy="per-level")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            group_planes(_sample_planesets(), 2, policy="nope")

    def test_too_many_components(self):
        ps = [encode_planes(np.ones(4), num_planes=2)]
        with pytest.raises(ValueError):
            group_planes(ps, 10)

    def test_single_component(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 1)
        assert len(comps) == 1

    def test_empty_group_skipped(self):
        ps = _sample_planesets()
        ps.append(encode_planes(np.zeros(0)))
        comps = group_planes(ps, 2)
        for c in comps:
            assert all(ref.group < 3 for ref, _ in c.entries)


class TestSerialization:
    def test_roundtrip(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 3)
        blob = component_to_bytes(comps[1], ps)
        idx, entries = component_from_bytes(blob)
        assert idx == 1
        assert len(entries) == len(comps[1].entries)
        for (ref, raw), (ref2, raw2, meta) in zip(comps[1].entries, entries):
            assert ref == ref2
            assert raw == raw2
            assert meta == (
                ps[ref.group].count,
                ps[ref.group].exponent,
                ps[ref.group].num_planes,
            )

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            component_from_bytes(b"XXXX" + b"\x00" * 16)

    def test_truncated(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 2)
        blob = component_to_bytes(comps[0], ps)
        with pytest.raises(ValueError):
            component_from_bytes(blob[: len(blob) - 5])


class TestAssembly:
    def test_full_assembly_matches_original(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 4)
        parsed = [
            component_from_bytes(component_to_bytes(c, ps))[1] for c in comps
        ]
        rebuilt = assemble_planesets(parsed)
        assert len(rebuilt) == len(ps)
        for orig, back in zip(ps, rebuilt):
            assert back.count == orig.count
            assert back.exponent == orig.exponent
            assert back.num_planes == orig.num_planes
            assert back.planes == orig.planes

    def test_prefix_assembly_is_plane_prefix(self):
        ps = _sample_planesets()
        comps = group_planes(ps, 4)
        parsed = [
            component_from_bytes(component_to_bytes(c, ps))[1] for c in comps[:2]
        ]
        rebuilt = assemble_planesets(parsed)
        for orig, back in zip(ps, rebuilt):
            if back.count == 0:
                continue
            assert back.planes == orig.planes[: len(back.planes)]

    def test_empty(self):
        assert assemble_planesets([]) == []
