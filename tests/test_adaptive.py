"""Tests for adaptive bandwidth tracking and drifting network models."""

import numpy as np
import pytest

from repro.core import BandwidthTracker, adaptive_strategy, gathering_latency
from repro.core.gathering import naive_strategy, optimized_strategy
from repro.metadata import MetadataCatalog
from repro.transfer import (
    DiurnalBandwidthModel,
    DriftingBandwidthModel,
    paper_bandwidth_profile,
)

SIZES = [1e9, 5e9, 25e9, 125e9]
MS = [8, 6, 4, 2]


@pytest.fixture
def tracker(tmp_path):
    catalog = MetadataCatalog(tmp_path / "meta")
    prior = paper_bandwidth_profile(16)
    yield BandwidthTracker(catalog, prior)
    catalog.close()


class TestDriftingModel:
    def test_step_changes_bandwidth(self):
        model = DriftingBandwidthModel(np.full(4, 1e9), sigma=0.2, seed=0)
        before = model.current.copy()
        after = model.step()
        assert not np.allclose(before, after)

    def test_clamped_to_range(self):
        model = DriftingBandwidthModel(
            np.full(4, 1e9), sigma=1.0, floor=0.5, ceiling=2.0, seed=1
        )
        for _ in range(100):
            bw = model.step()
            assert np.all(bw >= 0.5e9 - 1e-6)
            assert np.all(bw <= 2.0e9 + 1e-6)

    def test_observation_noise(self):
        model = DriftingBandwidthModel(np.full(2, 1e9), sigma=0.0, seed=2)
        obs = [model.observe(0, noise=0.1) for _ in range(200)]
        assert abs(np.median(obs) - 1e9) / 1e9 < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftingBandwidthModel(np.array([0.0]))
        with pytest.raises(ValueError):
            DriftingBandwidthModel(np.array([1.0]), sigma=-1)
        with pytest.raises(ValueError):
            DriftingBandwidthModel(np.array([1.0]), floor=2.0)


class TestDiurnalModel:
    def test_periodicity(self):
        model = DiurnalBandwidthModel(np.full(3, 1e9), amplitude=0.3, seed=0)
        np.testing.assert_allclose(model.at(0.0), model.at(86400.0))

    def test_amplitude_bound(self):
        model = DiurnalBandwidthModel(np.full(3, 1e9), amplitude=0.3, seed=0)
        for t in np.linspace(0, 86400, 25):
            bw = model.at(t)
            assert np.all(bw >= 0.7e9 - 1e-6)
            assert np.all(bw <= 1.3e9 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBandwidthModel(np.array([1.0]), amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalBandwidthModel(np.array([-1.0]))
        with pytest.raises(ValueError):
            DiurnalBandwidthModel(np.array([1.0]), period=0)


class TestTracker:
    def test_prior_until_observed(self, tracker):
        np.testing.assert_array_equal(tracker.estimates(), tracker.prior)

    def test_observations_update_estimates(self, tracker):
        for _ in range(10):
            tracker.observe(3, 1e9, 2.0)  # 0.5 GB/s observed
        est = tracker.estimates()
        assert est[3] == pytest.approx(0.5e9, rel=1e-6)
        assert est[0] == tracker.prior[0]

    def test_observe_validation(self, tracker):
        with pytest.raises(ValueError):
            tracker.observe(99, 1.0, 1.0)
        with pytest.raises(ValueError):
            tracker.observe(0, 0.0, 1.0)
        with pytest.raises(ValueError):
            tracker.observe(0, 1.0, 0.0)

    def test_prior_validation(self, tmp_path):
        with MetadataCatalog(tmp_path / "m2") as cat:
            with pytest.raises(ValueError):
                BandwidthTracker(cat, np.array([1.0, -1.0]))

    def test_tracker_converges_under_drift(self, tracker):
        """After a few observe/estimate rounds the tracker's error
        against the drifted truth beats the stale prior's error."""
        rng = np.random.default_rng(0)
        true = tracker.prior * rng.uniform(0.4, 2.5, size=tracker.n)
        for _ in range(12):
            out = naive_strategy(SIZES, MS, tracker.estimates())
            tracker.observe_outcome(out, SIZES, MS, true)
            # also observe the systems naive ignores, as background
            # traffic would
            for i in range(tracker.n):
                tracker.observe(i, 1e9, 1e9 / true[i])
        err_prior = float(np.mean(np.abs(tracker.prior - true) / true))
        assert tracker.estimation_error(true) < err_prior / 3


class TestAdaptiveStrategy:
    def test_adaptive_beats_stale_prior_after_drift(self, tracker):
        """When bandwidths drift, gathering with tracked estimates yields
        lower *true* latency than optimising against the stale prior."""
        rng = np.random.default_rng(7)
        true = tracker.prior.copy()
        # invert the bandwidth ranking: the fastest sites became slow
        true = true[::-1].copy()
        for i in range(tracker.n):
            for _ in range(8):
                tracker.observe(i, 1e9, 1e9 / true[i])

        stale = optimized_strategy(
            SIZES, MS, tracker.prior, time_budget=0.3, charged_time=0.0,
            seed=0, objective="makespan",
        )
        adaptive = adaptive_strategy(
            tracker, SIZES, MS, time_budget=0.3, charged_time=0.0,
            seed=0, objective="makespan",
        )
        t_stale = gathering_latency(stale, SIZES, MS, true)
        t_adaptive = gathering_latency(adaptive, SIZES, MS, true)
        assert t_adaptive < t_stale

    def test_adaptive_equals_optimized_without_observations(self, tracker):
        # iteration budgets keep the ACO runs deterministic
        a = adaptive_strategy(
            tracker, SIZES, MS, time_budget=None, max_iterations=25,
            charged_time=0.0, seed=3,
        )
        b = optimized_strategy(
            SIZES, MS, tracker.prior, time_budget=None, max_iterations=25,
            charged_time=0.0, seed=3,
        )
        assert np.array_equal(a.x, b.x)


class TestStalenessDecay:
    """WAN telemetry goes stale: estimates must decay back toward the
    prior as epochs pass without fresh observations (§4.3 extension)."""

    def mk(self, tmp_path, horizon):
        catalog = MetadataCatalog(tmp_path / "meta")
        prior = paper_bandwidth_profile(16)
        return catalog, BandwidthTracker(
            catalog, prior, staleness_horizon=horizon
        )

    def test_fresh_observation_fully_trusted(self, tmp_path):
        catalog, tracker = self.mk(tmp_path, 4.0)
        try:
            tracker.observe(0, 2e9, 1.0)
            assert tracker.age(0) == 0.0
            assert tracker.estimates()[0] == pytest.approx(2e9)
        finally:
            catalog.close()

    def test_decay_is_monotone_toward_prior(self, tmp_path):
        catalog, tracker = self.mk(tmp_path, 4.0)
        try:
            tracker.observe(0, 2e9, 1.0)  # well above the prior
            prior = tracker.prior[0]
            gaps = []
            prev_gap = abs(tracker.estimates()[0] - prior)
            for _ in range(12):
                tracker.tick()
                gap = abs(tracker.estimates()[0] - prior)
                assert gap <= prev_gap + 1e-9, "decay must be monotone"
                gaps.append(gap)
                prev_gap = gap
            # After 3 horizons the estimate is essentially the prior.
            assert gaps[-1] < 0.05 * abs(2e9 - prior)
        finally:
            catalog.close()

    def test_reobservation_resets_the_clock(self, tmp_path):
        catalog, tracker = self.mk(tmp_path, 4.0)
        try:
            tracker.observe(0, 2e9, 1.0)
            for _ in range(8):
                tracker.tick()
            decayed = tracker.estimates()[0]
            tracker.observe(0, 2e9, 1.0)
            assert tracker.age(0) == 0.0
            refreshed = tracker.estimates()[0]
            assert abs(refreshed - 2e9) < abs(decayed - 2e9)
        finally:
            catalog.close()

    def test_never_observed_system_stays_at_prior(self, tmp_path):
        catalog, tracker = self.mk(tmp_path, 4.0)
        try:
            for _ in range(10):
                tracker.tick()
            assert tracker.age(5) == 0.0  # no history: nothing is stale
            assert np.array_equal(tracker.estimates(), tracker.prior)
        finally:
            catalog.close()

    def test_no_horizon_means_no_decay(self, tmp_path):
        catalog, tracker = self.mk(tmp_path, None)
        try:
            tracker.observe(0, 2e9, 1.0)
            before = tracker.estimates()[0]
            for _ in range(50):
                tracker.tick()
            assert tracker.estimates()[0] == before
        finally:
            catalog.close()

    def test_validation(self, tmp_path):
        catalog = MetadataCatalog(tmp_path / "meta")
        try:
            prior = paper_bandwidth_profile(16)
            with pytest.raises(ValueError):
                BandwidthTracker(catalog, prior, staleness_horizon=0.0)
            with pytest.raises(ValueError):
                BandwidthTracker(catalog, prior, staleness_horizon=-1.0)
            tracker = BandwidthTracker(catalog, prior, staleness_horizon=2.0)
            with pytest.raises(ValueError):
                tracker.tick(-1.0)
        finally:
            catalog.close()
