"""Tests for the self-healing stack: ledger, scrubber, repair engine.

The core contract (ISSUE 5): for *any* at-rest damage within each
level's fault tolerance ``m_j``, one ``scrub → repair`` pass returns
every level to full n-fragment redundancy with byte-identical,
CRC-verified fragments; a second scrub finds nothing; and a post-repair
restore is undegraded.  Alongside the property suite there are
deterministic tests for crash-resumable scrubbing, stale-copy adoption,
the minimal-read guarantee (exactly ``k`` source reads per damaged
stripe, observed through the injector trace), ledger reconstruction,
and the maintenance-schedule → fault-plan bridge.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan, InjectedFault, inflict_at_rest
from repro.core import RAPIDS
from repro.formats import verify
from repro.healing import DurabilityLedger, RepairEngine, Scrubber, scrub_and_repair
from repro.metadata import MetadataCatalog
from repro.storage import StorageCluster, StoredFragment
from repro.storage.failures import CorrelatedFailureModel, MaintenanceSchedule
from repro.transfer import paper_bandwidth_profile

NAME = "heal:obj"


def _field(edge=33, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, edge)
    return (
        np.sin(4 * x)[:, None, None]
        * np.cos(3 * x)[None, :, None]
        * np.sin(2 * x)[None, None, :]
        + 0.05 * rng.normal(size=(edge, edge, edge))
    ).astype(np.float32)


def _workspace(root, *, edge=33, seed=0):
    cluster = StorageCluster(paper_bandwidth_profile(16))
    catalog = MetadataCatalog(Path(root) / "meta")
    rapids = RAPIDS(cluster, catalog, omega=0.3, ec_workers=1)
    data = _field(edge, seed)
    rapids.prepare(NAME, data)
    return rapids, data


def _rot(system, name, level, index):
    """Flip payload bytes in the resident fragment, checksum untouched."""
    sf = system._store[(name, level, index)]
    b = bytearray(sf.payload)
    b[len(b) // 2] ^= 0x5A
    sf.payload = bytes(b)


@pytest.fixture
def workspace(tmp_path):
    rapids, data = _workspace(tmp_path)
    yield rapids, data
    rapids.catalog.close()


# -- the core self-healing property -------------------------------------------


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=8, deadline=None)
def test_any_damage_within_mj_heals_completely(seed):
    """Arbitrary missing+corrupt damage within each level's m_j →
    scrub+repair restores full redundancy, byte-identical fragments,
    idempotent second scrub, undegraded restore."""
    rng = np.random.default_rng(seed)
    with tempfile.TemporaryDirectory() as tmp:
        rapids, data = _workspace(tmp, edge=17)
        try:
            ledger = rapids.ledger
            entries = ledger.entries()
            assert entries, "prepare must record the durability ledger"
            golden = {
                (e.object_name, e.level): list(e.checksums) for e in entries
            }
            inflicted: set[tuple[int, int]] = set()
            for e in entries:
                count = int(rng.integers(0, e.m + 1))
                for i in rng.choice(e.n, size=count, replace=False):
                    i = int(i)
                    if rng.random() < 0.5:
                        rapids.cluster[i].delete(e.object_name, e.level, i)
                    else:
                        _rot(rapids.cluster[i], e.object_name, e.level, i)
                    inflicted.add((e.level, i))

            scrub, repair = scrub_and_repair(
                rapids.cluster, rapids.catalog, ledger=ledger
            )
            assert {(d.level, d.index) for d in scrub.damage} == inflicted
            if inflicted:
                assert repair is not None
                assert not repair.failures
                assert repair.repaired == len(inflicted)
            else:
                assert scrub.clean and repair is None

            # Full redundancy, byte-identical to the original encode.
            for e in ledger.entries():
                assert e.headroom == e.m
                for i in range(e.n):
                    frag = rapids.cluster[e.placement[i]].get(
                        e.object_name, e.level, i
                    )
                    assert verify(
                        frag.payload, golden[(e.object_name, e.level)][i]
                    )

            # A second scrub is a no-op.
            assert Scrubber(rapids.cluster, ledger).run().clean

            # And restore sees a fully healthy archive.
            res = rapids.restore(NAME, strategy="naive")
            assert res.degraded is None
            assert res.levels_used == len(entries)
        finally:
            rapids.catalog.close()


# -- minimal-read repair -------------------------------------------------------


def test_repair_reads_exactly_k_sources_per_damaged_stripe(workspace):
    rapids, _ = workspace
    ledger = rapids.ledger
    entry = ledger.entries()[1]  # level 1
    k = entry.n - entry.m
    rapids.cluster[3].delete(NAME, 1, 3)
    _rot(rapids.cluster[7], NAME, 1, 7)

    scrub = Scrubber(rapids.cluster, ledger).run()
    assert {(d.kind, d.index) for d in scrub.damage} == {
        ("missing", 3), ("corrupt", 7)
    }

    injector = FaultInjector(FaultPlan(), trace=True)
    rapids.cluster.attach_injector(injector)
    try:
        report = RepairEngine(
            rapids.cluster, rapids.catalog, ledger, workers=1
        ).repair(scrub)
    finally:
        rapids.cluster.attach_injector(None)

    assert report.repaired == 2 and not report.failures
    reads = [
        (ctx["level"], ctx["index"])
        for site, ctx in injector.trace
        if site == "storage.read"
    ]
    # Exactly k distinct source fragments, all from the damaged level,
    # each read once (no retries on a healthy path), shared by both
    # regenerated targets.
    assert len(reads) == k
    assert len(set(reads)) == k
    assert all(level == 1 for level, _ in reads)
    assert not any(idx in (3, 7) for _, idx in reads)


# -- crash-resumable scrubbing -------------------------------------------------


def test_scrub_rate_limit_resumes_from_cursor(workspace):
    rapids, _ = workspace
    ledger = rapids.ledger
    entries = ledger.entries()
    assert len(entries) >= 2
    last = entries[-1]
    _rot(rapids.cluster[5], NAME, last.level, 5)

    # Each run sweeps one 16-fragment stripe then "crashes"; a fresh
    # Scrubber instance (new process, same kvstore) picks up the cursor.
    reports = [Scrubber(rapids.cluster, ledger, max_fragments=16).run()]
    while not reports[-1].complete:
        reports.append(
            Scrubber(rapids.cluster, ledger, max_fragments=16).run()
        )
    assert len(reports) == len(entries)
    assert all(r.stripes_scanned == 1 for r in reports)
    assert all(r.resumed for r in reports[1:])
    assert sum(r.fragments_scanned for r in reports) == sum(
        e.n for e in entries
    )
    damage = [d for r in reports for d in r.damage]
    assert [(d.kind, d.level, d.index) for d in damage] == [
        ("corrupt", last.level, 5)
    ]
    # Cursor cleared on completion: the next run starts from the top.
    assert not Scrubber(rapids.cluster, ledger).run().resumed


# -- stale placements ----------------------------------------------------------


def test_repair_adopts_valid_stale_copy_without_data_movement(workspace):
    rapids, _ = workspace
    ledger = rapids.ledger
    frag = rapids.cluster[2].get(NAME, 0, 2)
    rapids.cluster[9].put(
        StoredFragment(NAME, 0, 2, frag.nbytes, frag.payload,
                       checksum=frag.checksum)
    )
    rapids.cluster[2].delete(NAME, 0, 2)

    scrub = Scrubber(rapids.cluster, ledger).run()
    assert [(d.kind, d.index, d.system_id) for d in scrub.damage] == [
        ("stale-placement", 2, 9)
    ]

    report = RepairEngine(
        rapids.cluster, rapids.catalog, ledger, workers=1
    ).repair(scrub)
    assert report.counts() == {"adopted": 1}
    assert report.written_bytes == 0  # metadata fix, no regeneration
    assert ledger.get(NAME, 0).placement[2] == 9
    assert rapids.catalog.get_fragment(NAME, 0, 2).system_id == 9
    assert Scrubber(rapids.cluster, ledger).run().clean


def test_repair_clears_redundant_stale_copy(workspace):
    rapids, _ = workspace
    frag = rapids.cluster[4].get(NAME, 0, 4)
    # A leftover duplicate: home still healthy, extra copy elsewhere.
    rapids.cluster[11].put(
        StoredFragment(NAME, 0, 4, frag.nbytes, frag.payload,
                       checksum=frag.checksum)
    )
    scrub, repair = scrub_and_repair(
        rapids.cluster, rapids.catalog, ledger=rapids.ledger
    )
    assert [d.kind for d in scrub.damage] == ["stale-placement"]
    assert repair.counts() == {"cleared-stale": 1}
    assert not rapids.cluster[11].has(NAME, 0, 4)
    assert Scrubber(rapids.cluster, rapids.ledger).run().clean


# -- durability ledger ---------------------------------------------------------


def test_ledger_rebuild_from_catalog(workspace):
    rapids, _ = workspace
    ledger = rapids.ledger
    original = ledger.entries()
    assert original
    ledger.delete_object(NAME)
    assert ledger.entries() == []
    written = ledger.rebuild_from_catalog(rapids.catalog)
    assert written == len(original)
    assert ledger.entries() == original


def test_ledger_headroom_tracks_scrub_findings(workspace):
    rapids, _ = workspace
    ledger = rapids.ledger
    entry = ledger.entries()[0]
    rapids.cluster[1].delete(NAME, entry.level, 1)
    _rot(rapids.cluster[6], NAME, entry.level, 6)
    Scrubber(rapids.cluster, ledger).run()
    updated = ledger.get(NAME, entry.level)
    assert updated.headroom == entry.m - 2
    assert updated.deficit == 2
    assert [e.level for e in ledger.deficits()] == [entry.level]


def test_unrecoverable_level_is_capped_by_restore(workspace):
    """A level the ledger knows to be beyond m_j is skipped, not
    gathered and failed."""
    rapids, data = workspace
    entries = rapids.ledger.entries()
    last = entries[-1]
    for i in range(last.m + 1):
        rapids.cluster[i].delete(NAME, last.level, i)
    Scrubber(rapids.cluster, rapids.ledger).run()
    assert rapids.ledger.get(NAME, last.level).headroom < 0
    res = rapids.restore(NAME, strategy="naive")
    assert res.levels_used == len(entries) - 1
    assert res.degraded is None  # skipped via the ledger, not failed


# -- at-rest infliction --------------------------------------------------------


def test_inflict_at_rest_is_deterministic_and_detected(workspace):
    rapids, _ = workspace
    plan = FaultPlan.random(11, n_systems=16, intensity=0.3)
    inflicted = inflict_at_rest(plan, rapids.cluster)
    # Determinism: the records are a pure function of (plan, inventory).
    with tempfile.TemporaryDirectory() as tmp:
        other, _ = _workspace(tmp)
        try:
            assert inflict_at_rest(plan, other.cluster) == inflicted
        finally:
            other.catalog.close()
    scrub = Scrubber(rapids.cluster, rapids.ledger).run()
    found = {(d.object_name, d.level, d.index) for d in scrub.damage}
    for rec in inflicted:
        assert (rec["object_name"], rec["level"], rec["index"]) in found


# -- maintenance-schedule bridge -----------------------------------------------


def test_fault_plan_from_schedule_roundtrip():
    sched = MaintenanceSchedule()
    sched.add_window(3, 1.0, 2.0)
    sched.add_window(5, 0.0, 1.5)
    plan = FaultPlan.from_schedule(sched, ops_per_unit=10, seed=42)
    assert FaultPlan.from_json(plan.to_json()) == plan

    read_specs = {
        s.where["system_id"]: s
        for s in plan.specs
        if s.site == "storage.read"
    }
    assert read_specs[3].start == 10 and read_specs[3].stop == 20
    assert read_specs[5].start == 0 and read_specs[5].stop == 15
    assert all(s.scope == "site" and s.effect == "error"
               for s in plan.specs)

    # Behavioural round-trip: replaying reads against system 3 fails
    # exactly while the schedule says it is down.
    injector = FaultInjector(plan)
    observed = []
    for occ in range(25):
        try:
            injector.check("storage.read", system_id=3)
            observed.append(False)
        except InjectedFault:
            observed.append(True)
    expected = [3 in sched.down_at(occ / 10) for occ in range(25)]
    assert observed == expected


def test_fault_plan_from_schedule_drops_empty_windows():
    sched = MaintenanceSchedule()
    sched.add_window(0, 0.0, 0.04)  # rounds to an empty occurrence window
    plan = FaultPlan.from_schedule(sched, ops_per_unit=10)
    assert plan.specs == ()


def test_fault_plan_from_correlated_model():
    model = CorrelatedFailureModel(
        [[0, 1, 2, 3], [4, 5, 6, 7]], p_region=1.0, p_single=0.0, seed=1
    )
    plan = FaultPlan.from_failure_model(model, 8, seed=1)
    assert set(plan.outage_ids()) == set(range(8))


# -- end-to-end ----------------------------------------------------------------


def test_scrub_and_repair_heals_around_outage(workspace):
    """A downed home re-replicates onto surviving systems; the ledger
    follows the new placement and a later restore is undegraded."""
    rapids, _ = workspace
    rapids.cluster[6].fail()
    scrub, repair = scrub_and_repair(
        rapids.cluster, rapids.catalog, ledger=rapids.ledger
    )
    per_level = {d.level for d in scrub.damage}
    assert all(d.kind == "missing" and d.index == 6 for d in scrub.damage)
    assert per_level == {e.level for e in rapids.ledger.entries()}
    assert repair is not None and not repair.failures
    for e in rapids.ledger.entries():
        assert e.headroom == e.m
        assert e.placement[6] != 6
    assert Scrubber(rapids.cluster, rapids.ledger).run().clean
    res = rapids.restore(NAME, strategy="naive")
    assert res.degraded is None
