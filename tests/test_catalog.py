"""Tests for the metadata catalog schema."""

import pytest

from repro.metadata import FragmentRecord, MetadataCatalog, ObjectRecord


@pytest.fixture
def catalog(tmp_path):
    with MetadataCatalog(tmp_path / "meta") as cat:
        yield cat


def _obj(name="nyx:temperature"):
    return ObjectRecord(
        name=name,
        shape=[512, 512, 512],
        dtype="float32",
        level_sizes=[100, 1000, 10000, 100000],
        level_errors=[4e-3, 5e-4, 6e-5, 1e-7],
        ft_config=[8, 5, 4, 2],
        n_systems=16,
        data_max=312.5,
    )


class TestObjects:
    def test_roundtrip(self, catalog):
        catalog.put_object(_obj())
        rec = catalog.get_object("nyx:temperature")
        assert rec.shape == [512, 512, 512]
        assert rec.ft_config == [8, 5, 4, 2]
        assert rec.num_levels == 4
        assert rec.data_max == 312.5

    def test_missing(self, catalog):
        with pytest.raises(KeyError):
            catalog.get_object("ghost")

    def test_list(self, catalog):
        catalog.put_object(_obj("a"))
        catalog.put_object(_obj("b"))
        assert catalog.list_objects() == ["a", "b"]

    def test_delete_cascades(self, catalog):
        catalog.put_object(_obj("a"))
        catalog.put_fragment(FragmentRecord("a", 0, 0, 3, 100))
        catalog.put_fragment(FragmentRecord("a", 1, 2, 4, 200))
        catalog.delete_object("a")
        assert catalog.list_objects() == []
        assert catalog.level_fragments("a", 0) == []

    def test_overwrite(self, catalog):
        catalog.put_object(_obj("a"))
        updated = _obj("a")
        updated.ft_config = [9, 6, 4, 2]
        catalog.put_object(updated)
        assert catalog.get_object("a").ft_config == [9, 6, 4, 2]


class TestFragments:
    def test_roundtrip(self, catalog):
        catalog.put_fragment(FragmentRecord("obj", 2, 7, 11, 4096, checksum=123))
        rec = catalog.get_fragment("obj", 2, 7)
        assert rec.system_id == 11
        assert rec.nbytes == 4096
        assert rec.checksum == 123

    def test_missing(self, catalog):
        with pytest.raises(KeyError):
            catalog.get_fragment("obj", 0, 0)

    def test_level_fragments_sorted(self, catalog):
        for idx in (3, 1, 2, 0):
            catalog.put_fragment(FragmentRecord("obj", 0, idx, idx, 10))
        recs = catalog.level_fragments("obj", 0)
        assert [r.index for r in recs] == [0, 1, 2, 3]

    def test_level_isolation(self, catalog):
        catalog.put_fragment(FragmentRecord("obj", 0, 0, 0, 10))
        catalog.put_fragment(FragmentRecord("obj", 1, 0, 1, 10))
        assert len(catalog.level_fragments("obj", 0)) == 1

    def test_relocate(self, catalog):
        catalog.put_fragment(FragmentRecord("obj", 0, 5, 2, 10))
        catalog.relocate_fragment("obj", 0, 5, 9)
        assert catalog.get_fragment("obj", 0, 5).system_id == 9


class TestBandwidthHistory:
    def test_estimate_none_without_history(self, catalog):
        assert catalog.bandwidth_estimate(0) is None

    def test_single_observation(self, catalog):
        catalog.record_throughput(0, 1e9)
        assert catalog.bandwidth_estimate(0) == 1e9

    def test_ewma_tracks_recent(self, catalog):
        for _ in range(20):
            catalog.record_throughput(1, 1e9)
        for _ in range(20):
            catalog.record_throughput(1, 2e9)
        est = catalog.bandwidth_estimate(1)
        assert est > 1.9e9

    def test_history_bounded(self, catalog):
        for i in range(200):
            catalog.record_throughput(2, 1e9 + i, keep=16)
        import json

        raw = catalog.store.get(b"bw/0002")
        assert len(json.loads(raw)) == 16

    def test_validation(self, catalog):
        with pytest.raises(ValueError):
            catalog.record_throughput(0, 0.0)


def test_persistence(tmp_path):
    with MetadataCatalog(tmp_path / "meta") as cat:
        cat.put_object(_obj("persisted"))
    with MetadataCatalog(tmp_path / "meta") as cat:
        assert cat.get_object("persisted").n_systems == 16
