"""Tests for the gathering MINLP model, ACO solver, and oracle."""

import numpy as np
import pytest

from repro.optimize import (
    ACOSolver,
    GatheringModel,
    exhaustive_gathering,
    solution_space_size,
)


def small_model(objective="average", available=None, seed=0):
    rng = np.random.default_rng(seed)
    n = 6
    bw = rng.uniform(0.4e9, 3e9, size=n)
    if available is None:
        available = np.ones(n, dtype=bool)
    return GatheringModel(
        fragment_sizes=np.array([1e9, 8e9]),
        needed=np.array([2, 4]),
        bandwidths=bw,
        available=np.asarray(available),
        objective=objective,
    )


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            GatheringModel(
                np.array([1.0]), np.array([1, 2]), np.ones(3), np.ones(3, bool)
            )
        with pytest.raises(ValueError):
            GatheringModel(
                np.array([1.0]), np.array([0]), np.ones(3), np.ones(3, bool)
            )
        with pytest.raises(ValueError):
            GatheringModel(
                np.array([1.0]), np.array([4]), np.ones(3), np.ones(3, bool)
            )
        with pytest.raises(ValueError):
            GatheringModel(
                np.array([1.0]),
                np.array([1]),
                np.ones(3),
                np.ones(3, bool),
                objective="best",
            )

    def test_unavailable_capacity_check(self):
        avail = np.array([True, True, False, False, False, False])
        with pytest.raises(ValueError):
            small_model(available=avail)  # level needs 4 > 2 available

    def test_feasibility(self):
        m = small_model()
        x = m.naive_solution()
        assert m.feasible(x)
        x2 = x.copy()
        x2[:, 0] = 0
        assert not m.feasible(x2)
        assert m.evaluate(x2) == float("inf")

    def test_feasible_rejects_unavailable(self):
        avail = np.ones(6, dtype=bool)
        avail[0] = False
        m = small_model(available=avail)
        x = m.naive_solution()
        assert m.feasible(x)
        x[0, 0] = 1
        assert not m.feasible(x)

    def test_objective_matches_hand_calc(self):
        m = GatheringModel(
            fragment_sizes=np.array([100.0]),
            needed=np.array([2]),
            bandwidths=np.array([10.0, 20.0, 5.0]),
            available=np.ones(3, dtype=bool),
        )
        x = np.array([[1], [1], [0]])
        # times: 100/10=10 and 100/20=5; average 7.5
        assert m.evaluate(x) == pytest.approx(7.5)

    def test_contention_in_objective(self):
        m = GatheringModel(
            fragment_sizes=np.array([100.0, 100.0]),
            needed=np.array([1, 1]),
            bandwidths=np.array([10.0, 1.0]),
            available=np.ones(2, dtype=bool),
        )
        both_fast = np.array([[1, 1], [0, 0]])
        # both on system 0: each gets 5 B/s -> 20s each, avg 20
        assert m.evaluate(both_fast) == pytest.approx(20.0)
        split = np.array([[1, 0], [0, 1]])
        # 100/10=10 and 100/1=100 -> avg 55
        assert m.evaluate(split) == pytest.approx(55.0)

    def test_makespan_objective(self):
        m = small_model(objective="makespan")
        x = m.naive_solution()
        t = m.transfer_times(x)
        assert m.evaluate(x) == pytest.approx(t.max())

    def test_naive_uses_fastest(self):
        m = small_model()
        x = m.naive_solution()
        order = np.argsort(m.bandwidths)[::-1]
        assert x[order[0], 0] == 1 and x[order[1], 0] == 1

    def test_random_feasible(self):
        m = small_model()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert m.feasible(m.random_solution(rng))

    def test_repair(self):
        m = small_model()
        rng = np.random.default_rng(1)
        x = np.zeros((6, 2), dtype=np.int8)
        fixed = m.repair(x, rng)
        assert m.feasible(fixed)

    def test_repair_removes_unavailable(self):
        avail = np.ones(6, dtype=bool)
        avail[2] = False
        m = small_model(available=avail)
        x = np.ones((6, 2), dtype=np.int8)
        fixed = m.repair(x, np.random.default_rng(0))
        assert m.feasible(fixed)
        assert not fixed[2].any()

    def test_local_search_never_worsens(self):
        m = small_model()
        rng = np.random.default_rng(2)
        for _ in range(5):
            x = m.random_solution(rng)
            improved = m.local_search(x)
            assert m.evaluate(improved) <= m.evaluate(x) + 1e-12


class TestOracle:
    def test_space_size(self):
        m = small_model()
        # C(6,2) * C(6,4) = 15 * 15
        assert solution_space_size(m) == 225

    def test_limit(self):
        m = small_model()
        with pytest.raises(ValueError):
            exhaustive_gathering(m, limit=10)

    def test_oracle_beats_or_ties_everything(self):
        m = small_model()
        _, best = exhaustive_gathering(m)
        rng = np.random.default_rng(3)
        for _ in range(30):
            assert best <= m.evaluate(m.random_solution(rng)) + 1e-12
        assert best <= m.evaluate(m.naive_solution()) + 1e-12


class TestACO:
    def test_validation(self):
        with pytest.raises(ValueError):
            ACOSolver(ants=0)
        with pytest.raises(ValueError):
            ACOSolver(rho=1.5)

    def test_finds_optimum_on_small_instance(self):
        m = small_model()
        _, opt = exhaustive_gathering(m)
        res = ACOSolver(seed=0).solve(m, max_iterations=60)
        assert res.value == pytest.approx(opt, rel=1e-9)

    def test_beats_naive_and_random(self):
        """The Fig. 4 ordering: Optimized <= Naive and <= mean(Random)."""
        rng = np.random.default_rng(7)
        m = small_model(seed=11)
        res = ACOSolver(seed=1).solve(m, max_iterations=50)
        naive_val = m.evaluate(m.naive_solution())
        rand_vals = [m.evaluate(m.random_solution(rng)) for _ in range(50)]
        assert res.value <= naive_val + 1e-9
        assert res.value <= np.mean(rand_vals)

    def test_warm_start(self):
        m = small_model()
        warm = m.naive_solution()
        res = ACOSolver(seed=2).solve(m, warm_start=warm, max_iterations=10)
        assert res.value <= m.evaluate(warm) + 1e-9

    def test_history_monotone(self):
        m = small_model()
        res = ACOSolver(seed=3).solve(m, max_iterations=30)
        assert all(a >= b for a, b in zip(res.history, res.history[1:]))

    def test_time_budget_respected(self):
        m = small_model()
        res = ACOSolver(seed=4).solve(m, time_budget=0.2, max_iterations=10**6)
        assert res.elapsed < 2.0

    def test_solution_feasible(self):
        avail = np.ones(6, dtype=bool)
        avail[1] = False
        m = small_model(available=avail)
        res = ACOSolver(seed=5).solve(m, max_iterations=20)
        assert m.feasible(res.x)

    def test_deterministic_with_iteration_budget(self):
        m = small_model()
        r1 = ACOSolver(seed=9).solve(m, max_iterations=15)
        r2 = ACOSolver(seed=9).solve(m, max_iterations=15)
        assert r1.value == r2.value
        assert np.array_equal(r1.x, r2.x)
