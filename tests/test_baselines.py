"""Tests for the DP and plain-EC baseline methods."""

import numpy as np
import pytest

from repro.core import DuplicationMethod, PlainECMethod
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile

BW = paper_bandwidth_profile(16)


class TestDuplication:
    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicationMethod(1)

    def test_prepare_accounting(self):
        dp = DuplicationMethod(3)
        rep = dp.prepare(1e12, BW)
        assert rep.storage_overhead == 2.0
        assert rep.network_bytes == 2e12
        assert rep.distribution_latency > 0
        assert 0 < rep.expected_error < 1

    def test_expected_error_is_p_to_m(self):
        dp = DuplicationMethod(2)
        assert dp.expected_error(16, 0.01) == pytest.approx(1e-4)

    def test_restore_uses_fastest_surviving(self):
        dp = DuplicationMethod(3)
        rep = dp.restore(1e12, BW)
        fastest = BW.max()
        assert rep.gathering_latency == pytest.approx(1e12 / fastest)

    def test_restore_with_failed_holder(self):
        dp = DuplicationMethod(3)
        order = np.argsort(BW)[::-1]
        rep = dp.restore(1e12, BW, failed=[int(order[0])])
        assert rep.gathering_latency == pytest.approx(1e12 / BW[order[1]])

    def test_restore_all_holders_down(self):
        dp = DuplicationMethod(2)
        order = np.argsort(BW)[::-1]
        with pytest.raises(RuntimeError):
            dp.restore(1e12, BW, failed=[int(order[0])])


class TestPlainEC:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlainECMethod(0, 1)

    def test_prepare_accounting(self):
        ec = PlainECMethod(12, 4)
        rep = ec.prepare(12e12, BW)
        assert rep.storage_overhead == pytest.approx(1 / 3)
        assert rep.network_bytes == pytest.approx(16e12)

    def test_restore_needs_k_fragments(self):
        ec = PlainECMethod(12, 4)
        with pytest.raises(RuntimeError):
            ec.restore(1e12, BW, failed=[0, 1, 2, 3, 4])
        rep = ec.restore(1e12, BW, failed=[0, 1, 2, 3])
        assert rep.gathering_latency > 0

    def test_overhead_beats_duplication(self):
        assert PlainECMethod(12, 4).prepare(1e12, BW).storage_overhead < (
            DuplicationMethod(3).prepare(1e12, BW).storage_overhead
        )

    def test_physical_roundtrip(self):
        ec = PlainECMethod(4, 2)
        cluster = StorageCluster([1e9] * 6)
        payload = np.random.default_rng(0).bytes(1000)
        ec.encode_to_cluster("obj", payload, cluster)
        cluster.fail([1, 4])
        assert ec.decode_from_cluster("obj", cluster) == payload

    def test_physical_roundtrip_too_many_failures(self):
        ec = PlainECMethod(4, 2)
        cluster = StorageCluster([1e9] * 6)
        ec.encode_to_cluster("obj", b"payload" * 100, cluster)
        cluster.fail([0, 1, 5])
        with pytest.raises(ValueError):
            ec.decode_from_cluster("obj", cluster)

    def test_comparable_error_configs(self):
        """Table 4's fairness setup: DP(3 replicas) and EC(12+4) reach
        comparable expected errors at p=0.01."""
        dp = DuplicationMethod(3).expected_error(16, 0.01)
        ec = PlainECMethod(12, 4).expected_error(16, 0.01)
        assert 0.01 < dp / ec < 100
