"""Tests for the managed transfer-task layer (retries, failover)."""

import numpy as np
import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.transfer import TaskFailed, TransferTask, TransferTaskManager


def mk_tasks(n=4, nbytes=100.0):
    return [TransferTask(nbytes, [i % 4], tag=i) for i in range(n)]


class TestTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferTask(-1.0, [0])
        with pytest.raises(ValueError):
            TransferTask(1.0, [])

    def test_throughput_before_completion(self):
        t = TransferTask(100.0, [0])
        assert t.throughput == 0.0


class TestManagerHappyPath:
    def test_all_complete(self):
        mgr = TransferTaskManager(np.array([10.0] * 4), seed=0)
        tasks = mk_tasks()
        makespan = mgr.run(tasks)
        assert all(t.completed for t in tasks)
        assert makespan == pytest.approx(10.0)  # 100 bytes at 10 B/s

    def test_contention_shares_bandwidth(self):
        mgr = TransferTaskManager(np.array([10.0]))
        tasks = [TransferTask(100.0, [0], tag=i) for i in range(2)]
        makespan = mgr.run(tasks)
        assert makespan == pytest.approx(20.0)

    def test_completion_callback(self):
        seen = []
        mgr = TransferTaskManager(
            np.array([10.0, 20.0]),
            on_complete=lambda s, b, t: seen.append((s, b, t)),
        )
        mgr.run([TransferTask(100.0, [1], tag="x")])
        assert seen == [(1, 100.0, pytest.approx(5.0))]

    def test_zero_byte_task(self):
        mgr = TransferTaskManager(np.array([10.0]))
        assert mgr.run([TransferTask(0.0, [0])]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferTaskManager(np.array([0.0]))
        with pytest.raises(ValueError):
            TransferTaskManager(np.array([1.0]), failure_prob=1.0)
        with pytest.raises(ValueError):
            TransferTaskManager(np.array([1.0]), max_retries=0)
        mgr = TransferTaskManager(np.array([1.0]))
        with pytest.raises(ValueError):
            mgr.run([TransferTask(1.0, [7])])


class TestFailureHandling:
    def test_retries_recover(self):
        mgr = TransferTaskManager(
            np.array([10.0]), failure_prob=0.5, max_retries=10, seed=1
        )
        tasks = [TransferTask(100.0, [0], tag=i) for i in range(5)]
        mgr.run(tasks)
        assert all(t.completed for t in tasks)
        assert sum(t.attempts for t in tasks) > 5  # some retries happened
        assert any("failed" in line for line in mgr.log)

    def test_retries_cost_time(self):
        clean = TransferTaskManager(np.array([10.0]), failure_prob=0.0)
        flaky = TransferTaskManager(
            np.array([10.0]), failure_prob=0.6, max_retries=50, seed=2
        )
        t_clean = clean.run([TransferTask(1000.0, [0])])
        t_flaky = flaky.run([TransferTask(1000.0, [0])])
        assert t_flaky > t_clean

    def test_failover_to_second_source(self):
        """With retries certain to fail (prob ~1), the task fails over."""
        mgr = TransferTaskManager(
            np.array([10.0, 10.0]), failure_prob=0.95, max_retries=2, seed=3
        )
        # find a seed-dependent run where the first source exhausts
        task = TransferTask(100.0, [0, 1], tag="fo")
        try:
            mgr.run([task])
        except TaskFailed:
            pytest.skip("both sources failed under this seed")
        assert task.completed

    def test_exhaustion_raises(self):
        mgr = TransferTaskManager(
            np.array([10.0]), failure_prob=0.999999, max_retries=3, seed=4
        )
        with pytest.raises(TaskFailed):
            mgr.run([TransferTask(100.0, [0], tag="doomed")])

    def test_unlimited_retries_require_deadline(self):
        """Regression: max_retries=None used to retry a dead endpoint
        forever; now it is rejected unless a deadline bounds it."""
        with pytest.raises(ValueError, match="deadline"):
            TransferTaskManager(np.array([10.0]), max_retries=None)
        TransferTaskManager(
            np.array([10.0]), max_retries=None, deadline=60.0
        )  # ok

    def test_deadline_abandons_unbounded_retries(self):
        mgr = TransferTaskManager(
            np.array([10.0]), failure_prob=0.999999,
            max_retries=None, deadline=100.0, seed=4,
        )
        task = TransferTask(100.0, [0], tag="dl")
        with pytest.raises(TaskFailed) as exc_info:
            mgr.run([task])
        assert exc_info.value.deadline_hit
        assert exc_info.value.attempts == task.attempts > 0
        assert task.failure == "deadline"
        assert task.elapsed >= 100.0
        assert any("deadline" in line for line in mgr.log)

    def test_no_backoff_charged_after_final_attempt(self):
        """Regression: backoff used to be charged after the *last* attempt
        on a source, inflating elapsed time before failover/abandonment.
        With zero-byte tasks the only cost left is backoff, so the clock
        exposes the accounting exactly: two sources x two attempts means
        one backoff per source (between its attempts) = 2.0s, not the
        6.0s the buggy accounting produced."""
        mgr = TransferTaskManager(
            np.array([10.0, 10.0]), failure_prob=0.999999,
            max_retries=2, backoff=1.0, seed=0,
        )
        task = TransferTask(0.0, [0, 1], tag="acct")
        with pytest.raises(TaskFailed) as exc_info:
            mgr.run([task])
        assert task.elapsed == pytest.approx(2.0)
        assert exc_info.value.attempts == task.attempts == 4
        assert task.failure == "exhausted"

    def test_injected_fault_heals_after_occurrence_window(self):
        """A transfer.attempt error spec with stop=2 fails the first two
        attempts and heals; the third attempt completes the task."""
        mgr = TransferTaskManager(np.array([10.0]), max_retries=3, seed=0)
        mgr.attach_injector(FaultInjector(FaultPlan(specs=(
            FaultSpec(site="transfer.attempt", effect="error", stop=2),
        ))))
        task = TransferTask(100.0, [0], tag="heal")
        mgr.run([task])
        assert task.completed
        assert task.attempts == 3
        assert task.failure is None

    def test_injected_stall_adds_simulated_time(self):
        mgr = TransferTaskManager(np.array([10.0]), seed=0)
        mgr.attach_injector(FaultInjector(FaultPlan(specs=(
            FaultSpec(site="transfer.attempt", effect="stall",
                      magnitude=5.0, max_fires=1),
        ))))
        task = TransferTask(100.0, [0], tag="stall")
        makespan = mgr.run([task])
        assert task.completed
        assert makespan == pytest.approx(15.0)  # 10s transfer + 5s stall

    def test_deterministic_with_seed(self):
        def run():
            mgr = TransferTaskManager(
                np.array([10.0]), failure_prob=0.4, max_retries=20, seed=7
            )
            t = TransferTask(100.0, [0])
            mgr.run([t])
            return t.attempts, t.elapsed

        assert run() == run()


class TestTrackerIntegration:
    def test_feeds_bandwidth_tracker(self, tmp_path):
        from repro.core import BandwidthTracker
        from repro.metadata import MetadataCatalog

        with MetadataCatalog(tmp_path / "m") as cat:
            tracker = BandwidthTracker(cat, np.array([10.0, 99.0]))
            mgr = TransferTaskManager(
                np.array([10.0, 20.0]),
                on_complete=tracker.observe,
            )
            for _ in range(5):
                mgr.run([TransferTask(100.0, [1])])
            est = tracker.estimates()
            assert est[1] == pytest.approx(20.0, rel=1e-6)
            assert est[0] == 10.0  # untouched prior
