"""Tests for the process-parallel streaming prepare/restore engine.

The engine's contract has three legs, each covered here:

1. **Bit-identity** — ``parallelism="process"`` stores and restores
   exactly the bytes of the inline (``processes=1``) schedule, across
   shapes, dtypes and tile sizes (Hypothesis), and degrades identically
   under fault plans.
2. **Shared-memory hygiene** — the parent-owned arena never leaks a
   segment: not on success, not on worker crash
   (``BrokenProcessPool``), not on mid-pipeline exceptions.
3. **Streaming structure** — tiled fragments decode from any k of n
   fragment slices, the spool detects on-disk corruption, and the
   pipelined archival schedule respects its analytic bounds.
"""

import os
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core import RAPIDS
from repro.core.pipeline import PrepareReport
from repro.ec import ErasureCodec
from repro.ec.codec import encoded_fragment_len
from repro.metadata import MetadataCatalog
from repro.parallel import procpipe
from repro.parallel.procpipe import (
    AUTO_PROCESS_THRESHOLD,
    SharedArena,
    TileSource,
    resolve_mode,
    resolve_tiles,
)
from repro.refactor import Refactorer
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile
from repro.transfer.pipelined import pipelined_archival

N_SYSTEMS = 8


def make_pipeline(tmp_path, tag="p", n=N_SYSTEMS, **kwargs):
    cluster = StorageCluster(paper_bandwidth_profile(n))
    catalog = MetadataCatalog(tmp_path / f"meta-{tag}")
    kwargs.setdefault("refactorer", Refactorer(4, num_planes=24))
    # Loose storage budget: the arrays here are tiny, so encoded sizes
    # are large relative to the original and the paper's omega would
    # leave the FT solver infeasible.
    kwargs.setdefault("omega", 20.0)
    return RAPIDS(cluster, catalog, **kwargs)


def field(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, shape[0]).reshape((-1,) + (1,) * (len(shape) - 1))
    return (np.sin(4 * x) + 0.1 * rng.normal(size=shape)).astype(dtype)


def stored_bytes(pipeline, name, levels):
    """Every stored fragment's (payload, checksum), placement order."""
    out = []
    for j in range(levels):
        for i in range(pipeline.cluster.n):
            frag = pipeline.cluster[i].get(name, j, i)
            out.append((j, i, frag.payload, frag.checksum))
    return out


class TestResolveMode:
    def test_explicit_modes_pass_through(self):
        for mode in ("process", "thread", "none"):
            assert resolve_mode(mode, 0) == mode

    def test_auto_threshold(self):
        assert resolve_mode(None, AUTO_PROCESS_THRESHOLD) == "process"
        assert resolve_mode(None, AUTO_PROCESS_THRESHOLD - 1) == "thread"
        assert resolve_mode("auto", AUTO_PROCESS_THRESHOLD) == "process"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="parallelism"):
            resolve_mode("fork", 100)


class TestSharedArena:
    def test_lease_release_unlinks(self):
        arena = SharedArena()
        shm = arena.lease(1024)
        name = shm.name
        assert arena.live_names == [name]
        arena.release(name)
        assert arena.live_names == []
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_refcount_keeps_segment_alive(self):
        with SharedArena() as arena:
            shm = arena.lease(64)
            arena.retain(shm.name)
            arena.release(shm.name)
            assert arena.live_names == [shm.name]  # one reference left
            arena.release(shm.name)
            assert arena.live_names == []

    def test_close_unlinks_everything(self):
        arena = SharedArena()
        names = [arena.lease(64).name for _ in range(3)]
        arena.close()
        assert arena.live_names == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_peak_bytes_tracks_high_water_mark(self):
        with SharedArena() as arena:
            a = arena.lease(4096)
            b = arena.lease(4096)
            arena.release(a.name)
            arena.release(b.name)
            assert arena.peak_bytes >= 8192
            assert arena.active_bytes == 0
            assert arena.created == 2


class TestTileSource:
    def test_array_and_npy_sources_agree(self, tmp_path):
        data = field((24, 6, 5), np.float64)
        np.save(tmp_path / "obj.npy", data)
        with TileSource(data) as mem, TileSource(tmp_path / "obj.npy") as f:
            assert mem.shape == f.shape and mem.dtype == f.dtype
            for lo, hi in [(0, 7), (7, 24), (3, 4)]:
                np.testing.assert_array_equal(
                    mem.read_tile(lo, hi), f.read_tile(lo, hi)
                )

    def test_read_into_external_buffer(self, tmp_path):
        data = field((16, 4, 4), np.float32)
        np.save(tmp_path / "obj.npy", data)
        with TileSource(tmp_path / "obj.npy") as src:
            buf = bytearray(8 * src.row_nbytes)
            tile = src.read_tile(4, 12, out=buf)
            np.testing.assert_array_equal(tile, data[4:12])

    def test_fortran_order_rejected(self, tmp_path):
        data = np.asfortranarray(field((8, 4, 4), np.float64))
        np.save(tmp_path / "f.npy", data)
        with pytest.raises(ValueError, match="[Ff]ortran"):
            TileSource(tmp_path / "f.npy")

    def test_too_few_planes_rejected(self):
        with pytest.raises(ValueError, match="planes"):
            TileSource(np.zeros((1, 4), dtype=np.float64))

    def test_resolve_tiles_covers_extent(self):
        bounds = resolve_tiles((100, 8, 8), 8, tile_planes=16)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
        assert all(hi - lo >= 2 for lo, hi in bounds)


class TestBitIdentity:
    """Process mode must store and restore exactly the inline bytes."""

    @settings(max_examples=5, deadline=None)
    @given(
        planes=st.integers(min_value=8, max_value=28),
        width=st.integers(min_value=4, max_value=7),
        tile_planes=st.integers(min_value=2, max_value=9),
        dtype=st.sampled_from([np.float32, np.float64]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_process_matches_inline(
        self, tmp_path_factory, planes, width, tile_planes, dtype, seed
    ):
        tmp = tmp_path_factory.mktemp("ident")
        data = field((planes, width, width), dtype, seed=seed)
        reports = {}
        pipes = {}
        for tag, procs in (("inline", 1), ("proc", 2)):
            p = make_pipeline(tmp, tag)
            reports[tag] = p.prepare(
                "obj", data, parallelism="process",
                processes=procs, tile_planes=tile_planes,
            )
            pipes[tag] = p
        ri, rp = reports["inline"], reports["proc"]
        assert ri.ft_config == rp.ft_config
        assert ri.level_sizes == rp.level_sizes
        assert ri.level_errors == rp.level_errors
        assert rp.extra["procpipe"]["arena_leaked"] == []
        levels = len(ri.level_sizes)
        assert stored_bytes(pipes["inline"], "obj", levels) == stored_bytes(
            pipes["proc"], "obj", levels
        )
        back_i = pipes["inline"].restore("obj").data
        back_p = pipes["proc"].restore("obj", processes=2).data
        assert back_i is not None and back_p is not None
        np.testing.assert_array_equal(back_i, back_p)
        assert back_p.dtype == data.dtype and back_p.shape == data.shape

    def test_restore_error_within_recorded_bound(self, tmp_path):
        data = field((24, 6, 6), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=2,
                        tile_planes=6)
        res = p.restore("obj", processes=2)
        achieved = float(
            np.abs(res.data - data).max() / np.abs(data).max()
        )
        assert achieved <= rep.level_errors[res.levels_used - 1] * (1 + 1e-9)

    def test_prepare_timing_keys_match_thread_path(self, tmp_path):
        data = field((20, 5, 5), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=1)
        assert set(rep.timings) == {
            "read", "refactor", "ft_optimize", "ec_encode", "write",
            "metadata",
        }
        res = p.restore("obj")
        assert set(res.timings) == {
            "gather_optimize", "gather", "ec_decode", "reconstruct",
        }

    def test_npy_source_matches_array_source(self, tmp_path):
        data = field((20, 5, 5), np.float64)
        np.save(tmp_path / "obj.npy", data)
        p_arr = make_pipeline(tmp_path, "arr")
        p_npy = make_pipeline(tmp_path, "npy")
        r_arr = p_arr.prepare("obj", data, parallelism="process",
                              processes=2, tile_planes=5)
        r_npy = p_npy.prepare("obj", tmp_path / "obj.npy",
                              parallelism="process", processes=2,
                              tile_planes=5)
        assert r_arr.level_sizes == r_npy.level_sizes
        levels = len(r_arr.level_sizes)
        assert stored_bytes(p_arr, "obj", levels) == stored_bytes(
            p_npy, "obj", levels
        )

    def test_fragment_files_written(self, tmp_path):
        data = field((16, 5, 5), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=1,
                        fragment_dir=tmp_path / "frags")
        files = sorted((tmp_path / "frags").glob("*.rdc"))
        assert len(files) == len(rep.level_sizes) * N_SYSTEMS

    def test_none_mode_restores_workers(self, tmp_path):
        data = field((16, 5, 5), np.float64)
        p = make_pipeline(tmp_path)
        before = (p.ec_workers, p.refactor_workers, p.refactorer.workers)
        p.prepare("obj", data, parallelism="none")
        assert (p.ec_workers, p.refactor_workers, p.refactorer.workers) == before
        assert p.restore("obj").data is not None


class TestDegradedRestores:
    @pytest.fixture()
    def prepared(self, tmp_path):
        data = field((24, 6, 6), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=2,
                        tile_planes=6)
        return p, data, rep

    def _restore_under(self, pipeline, plan, **kwargs):
        injector = FaultInjector(plan)
        pipeline.attach_injector(injector)
        injector.apply_outages(pipeline.cluster)
        try:
            return pipeline.restore("obj", degrade=True, **kwargs)
        finally:
            pipeline.attach_injector(None)
            pipeline.cluster.restore_all()

    def test_outages_degrade_to_recoverable_prefix(self, prepared):
        p, data, rep = prepared
        # One more outage than the deepest (least-protected) level
        # tolerates: exactly the leading levels with m >= failures
        # survive.
        failures = rep.ft_config[-1] + 1
        expected = 0
        for m in rep.ft_config:
            if m < failures:
                break
            expected += 1
        plan = FaultPlan.outages(range(failures))
        res = self._restore_under(p, plan)
        assert res.levels_used == expected < len(rep.level_sizes)
        if expected:
            achieved = float(
                np.abs(res.data - data).max() / np.abs(data).max()
            )
            assert achieved <= rep.level_errors[expected - 1] * (1 + 1e-9)
        else:
            assert res.data is None

    def test_decode_fault_degrades_not_raises(self, prepared):
        p, data, rep = prepared
        deepest = len(rep.level_sizes) - 1
        plan = FaultPlan(specs=(
            FaultSpec(site="ec.decode", effect="error",
                      where={"level": deepest}),
        ))
        res = self._restore_under(p, plan)
        assert res.degraded is not None
        assert res.levels_used == deepest  # prefix below the fault
        assert any(f.stage == "decode" for f in res.degraded.failures)
        assert res.data is not None

    def test_degraded_bytes_match_clean_prefix(self, prepared):
        """A degraded restore returns the same bytes as a clean restore
        capped at the same prefix (target_error path)."""
        p, data, rep = prepared
        deepest = len(rep.level_sizes) - 1
        plan = FaultPlan(specs=(
            FaultSpec(site="ec.decode", effect="error",
                      where={"level": deepest}),
        ))
        degraded = self._restore_under(p, plan)
        clean = p.restore(
            "obj", target_error=rep.level_errors[degraded.levels_used - 1]
        )
        assert clean.levels_used == degraded.levels_used
        np.testing.assert_array_equal(degraded.data, clean.data)


def _crashing_refactor(block, config, *, measure_errors=False):
    """Dies hard in pool workers; behaves normally in the parent.

    The parent refactors the profile tile with the same stage callable,
    so an unconditional crash would take pytest down with it.
    """
    from repro.refactor.refactorer import refactor_block as real

    if os.getpid() == _crashing_refactor.parent_pid:
        return real(block, config, measure_errors=measure_errors)
    os._exit(13)


class TestArenaHygiene:
    def test_no_segments_leaked_on_success(self, tmp_path, monkeypatch):
        created = []
        real_lease = SharedArena.lease

        def spy_lease(self, nbytes):
            shm = real_lease(self, nbytes)
            created.append(shm.name)
            return shm

        monkeypatch.setattr(SharedArena, "lease", spy_lease)
        data = field((24, 6, 6), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=2,
                        tile_planes=6)
        assert p.restore("obj", processes=2).data is not None
        assert created, "process path should have used the arena"
        assert rep.extra["procpipe"]["arena_segments"] > 0
        for name in created:
            assert not (Path("/dev/shm") / name).exists(), name

    def test_worker_crash_unlinks_all_segments(self, tmp_path, monkeypatch):
        """A worker dying mid-task (BrokenProcessPool) must not leak."""
        created = []
        real_lease = SharedArena.lease

        def spy_lease(self, nbytes):
            shm = real_lease(self, nbytes)
            created.append(shm.name)
            return shm

        monkeypatch.setattr(SharedArena, "lease", spy_lease)
        # Pool workers are forked from this (patched) parent, so they
        # inherit the crashing stage callable.
        _crashing_refactor.parent_pid = os.getpid()
        monkeypatch.setattr(procpipe, "refactor_block", _crashing_refactor)
        data = field((24, 6, 6), np.float64)
        p = make_pipeline(tmp_path)
        with pytest.raises(Exception) as excinfo:
            p.prepare("obj", data, parallelism="process", processes=2,
                      tile_planes=6)
        assert isinstance(
            excinfo.value, (BrokenProcessPool, OSError, RuntimeError)
        )
        assert created, "crash must have happened after arena leases"
        for name in created:
            assert not (Path("/dev/shm") / name).exists(), name

    def test_spool_detects_on_disk_corruption(self, tmp_path, monkeypatch):
        """Flipping spooled bytes must fail the running-CRC readback."""
        real_read = procpipe._FragmentSpool.read_fragment
        tampered = {}

        def tamper_then_read(self, level, index):
            if not tampered:
                path = self.dir / f"l{level}.f{index:03d}.chunk"
                blob = bytearray(path.read_bytes())
                blob[0] ^= 0xFF
                path.write_bytes(bytes(blob))
                tampered["done"] = True
            return real_read(self, level, index)

        monkeypatch.setattr(
            procpipe._FragmentSpool, "read_fragment", tamper_then_read
        )
        data = field((16, 5, 5), np.float64)
        p = make_pipeline(tmp_path)
        with pytest.raises(OSError, match="running CRC"):
            p.prepare("obj", data, parallelism="process", processes=1)


class TestTiledLayout:
    def test_chunk_table_matches_fragment_lengths(self, tmp_path):
        data = field((24, 6, 6), np.float64)
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data, parallelism="process", processes=1,
                        tile_planes=6)
        rec = p.catalog.get_object("obj")
        pp = rec.extra["procpipe"]
        codec_n = p.cluster.n
        for j, chunk_row in enumerate(pp["chunks"]):
            k = codec_n - rec.ft_config[j]
            frag = p.cluster[0].get("obj", j, 0)
            assert sum(chunk_row) == len(frag.payload)
            assert len(chunk_row) == len(pp["tiles"])

    def test_any_k_fragment_slices_decode_every_tile(self, tmp_path):
        data = field((20, 5, 5), np.float64)
        p = make_pipeline(tmp_path)
        p.prepare("obj", data, parallelism="process", processes=1,
                  tile_planes=5)
        rec = p.catalog.get_object("obj")
        pp = rec.extra["procpipe"]
        codec = ErasureCodec(p.cluster.n)
        from repro.ec import ECConfig

        j = 0
        k = p.cluster.n - rec.ft_config[j]
        frags = {
            i: np.frombuffer(
                p.cluster[i].get("obj", j, i).payload, dtype=np.uint8
            )
            for i in range(p.cluster.n - k, p.cluster.n)  # parity-heavy k
        }
        offset = 0
        total = 0
        for t, size in enumerate(pp["chunks"][j]):
            sliced = {
                i: arr[offset : offset + size] for i, arr in frags.items()
            }
            payload = codec.decode_level(
                config=ECConfig(p.cluster.n, rec.ft_config[j]),
                fragments=sliced,
            )
            total += len(payload)
            offset += size
        assert total == rec.level_sizes[j]

    def test_encoded_fragment_len_matches_codec(self):
        codec = ErasureCodec(8)
        for payload_len in (0, 1, 7, 100, 4096, 65537):
            enc = codec.encode_level(bytes(payload_len), 2)
            assert enc.fragment_nbytes == encoded_fragment_len(
                6, payload_len
            )


class TestPipelinedArchival:
    def test_empty_events(self):
        sched = pipelined_archival([], [1e6, 1e6])
        assert sched.completion == 0.0 and sched.num_chunks == 0

    def test_bounds_hold(self):
        events = [(0.1 * i, 50_000.0) for i in range(10)]
        sched = pipelined_archival(events, [1e5, 2e5, 4e5])
        assert sched.lower_bound <= sched.completion <= (
            sched.sequential_completion + 1e-12
        )
        assert sched.overlap_saving >= 0.0

    def test_overlap_beats_sequential(self):
        # Compute and transfer comparable: overlap must win clearly.
        events = [(0.5 * i, 100_000.0) for i in range(8)]
        sched = pipelined_archival(events, [2e5, 2e5])
        assert sched.completion < sched.sequential_completion
        assert sched.transfer_makespan > 0

    def test_pure_transfer_bound(self):
        # Everything ready at t=0: completion equals transfer makespan.
        events = [(0.0, 1000.0)] * 5
        sched = pipelined_archival(events, [1e4])
        assert sched.completion == pytest.approx(sched.transfer_makespan)

    def test_rejects_bad_bandwidths(self):
        with pytest.raises(ValueError):
            pipelined_archival([(0.0, 1.0)], [0.0])


class TestAutoHeuristic:
    def test_small_objects_stay_on_thread_path(self, tmp_path):
        data = field((16, 5, 5), np.float64)  # far below the threshold
        p = make_pipeline(tmp_path)
        rep = p.prepare("obj", data)
        assert rep.extra == {}  # thread path: no procpipe diagnostics
        rec = p.catalog.get_object("obj")
        assert "procpipe" not in rec.extra

    def test_degenerate_shape_falls_back(self, tmp_path):
        p = make_pipeline(tmp_path)
        data = field((2, 4, 4), np.float64)
        rep = p.prepare("obj", data, parallelism="process", processes=2)
        assert isinstance(rep, PrepareReport)
        assert p.restore("obj").data is not None
