"""Tests for the availability / expected-error models (Eqs. 1-6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    duplication_storage_overhead,
    duplication_unavailability,
    ec_storage_overhead,
    ec_unavailability,
    expected_relative_error,
    level_recovery_probability,
    prob_more_than_k_failures,
    refactored_storage_overhead,
)


def binom_pmf(n, i, p):
    return math.comb(n, i) * p**i * (1 - p) ** (n - i)


class TestBasicProbabilities:
    def test_tail_matches_explicit_sum(self):
        n, p = 16, 0.01
        for k in range(-1, n + 1):
            explicit = sum(binom_pmf(n, i, p) for i in range(k + 1, n + 1))
            assert prob_more_than_k_failures(n, k, p) == pytest.approx(
                explicit, abs=1e-15
            )

    def test_duplication_matches_eq1(self):
        """Eq. 1 collapses to p**m (all replica holders down)."""
        n, m, p = 8, 3, 0.05
        eq1 = sum(
            math.comb(n - m, i) * p ** (m + i) * (1 - p) ** (n - m - i)
            for i in range(n - m + 1)
        )
        assert duplication_unavailability(n, m, p) == pytest.approx(eq1)
        assert duplication_unavailability(n, m, p) == pytest.approx(p**3)

    def test_ec_matches_eq2(self):
        n, m, p = 16, 4, 0.01
        eq2 = sum(binom_pmf(n, i, p) for i in range(m + 1, n + 1))
        assert ec_unavailability(n, m, p) == pytest.approx(eq2, rel=1e-10)

    def test_level_recovery_matches_eq4(self):
        n, p = 16, 0.01
        mj, mnext = 4, 2
        eq4 = sum(binom_pmf(n, i, p) for i in range(mnext + 1, mj + 1))
        assert level_recovery_probability(n, mj, mnext, p) == pytest.approx(
            eq4, rel=1e-10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_more_than_k_failures(0, 1, 0.1)
        with pytest.raises(ValueError):
            duplication_unavailability(4, 0, 0.5)
        with pytest.raises(ValueError):
            duplication_unavailability(4, 5, 0.5)
        with pytest.raises(ValueError):
            ec_unavailability(4, 4, 0.5)
        with pytest.raises(ValueError):
            level_recovery_probability(8, 2, 3, 0.1)

    @given(
        st.integers(min_value=2, max_value=32),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_ec_unavailability_in_unit_interval(self, n, p):
        val = ec_unavailability(n, 1, p)
        assert 0.0 <= val <= 1.0

    def test_more_parity_more_available(self):
        n, p = 16, 0.01
        vals = [ec_unavailability(n, m, p) for m in range(0, n)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))


class TestExpectedError:
    def test_bands_partition_probability(self):
        """The Eq. 5 coefficients of each error value sum to 1."""
        n, p = 16, 0.01
        ms = [4, 3, 2, 1]
        total = prob_more_than_k_failures(n, ms[0], p)
        total += sum(
            level_recovery_probability(n, ms[j], ms[j + 1], p)
            for j in range(len(ms) - 1)
        )
        total += 1 - prob_more_than_k_failures(n, ms[-1], p)
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_matches_explicit_eq5(self):
        n, p = 16, 0.01
        ms = [4, 3, 2, 1]
        errors = [4e-3, 5e-4, 6e-5, 1e-7]
        explicit = sum(binom_pmf(n, i, p) for i in range(ms[0] + 1, n + 1))
        explicit += errors[-1] * sum(binom_pmf(n, i, p) for i in range(ms[-1] + 1))
        for j in range(3):
            explicit += errors[j] * sum(
                binom_pmf(n, i, p) for i in range(ms[j + 1] + 1, ms[j] + 1)
            )
        got = expected_relative_error(n, p, ms, errors)
        assert got == pytest.approx(explicit, rel=1e-10)

    def test_fig2_ordering(self):
        """The Fig. 2 comparison: RF+EC with m=[4,3,2,1] beats DP(2
        replicas) and EC(3 parity) on expected error."""
        n, p = 16, 0.01
        rfec = expected_relative_error(
            n, p, [4, 3, 2, 1], [4e-3, 5e-4, 6e-5, 1e-7]
        )
        dp = duplication_unavailability(n, 2, p)
        ec = ec_unavailability(n, 3, p)
        assert rfec < dp
        assert rfec < ec

    def test_monotone_in_parity(self):
        n, p = 16, 0.01
        errors = [1e-2, 1e-3, 1e-4, 1e-6]
        weaker = expected_relative_error(n, p, [4, 3, 2, 1], errors)
        stronger = expected_relative_error(n, p, [8, 5, 4, 2], errors)
        assert stronger < weaker

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_relative_error(8, 0.01, [3, 3], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error(8, 0.01, [8, 2], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error(8, 0.01, [2, 0], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error(8, 0.01, [2], [0.1, 0.01])
        with pytest.raises(ValueError):
            expected_relative_error(8, 0.01, [], [])


class TestOverheads:
    def test_duplication(self):
        assert duplication_storage_overhead(3) == 2.0
        with pytest.raises(ValueError):
            duplication_storage_overhead(0)

    def test_ec(self):
        assert ec_storage_overhead(4, 2) == 0.5
        assert ec_storage_overhead(12, 4) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            ec_storage_overhead(0, 1)

    def test_refactored_matches_eq6(self):
        sizes = [100.0, 1000.0]
        ms = [3, 1]
        n, S = 8, 10_000.0
        expected = (3 / 5 * 100 + 1 / 7 * 1000) / S
        got = refactored_storage_overhead(sizes, ms, n, S)
        assert got == pytest.approx(expected)

    def test_refactored_validation(self):
        with pytest.raises(ValueError):
            refactored_storage_overhead([1.0], [1, 2], 8, 10.0)
        with pytest.raises(ValueError):
            refactored_storage_overhead([1.0], [8], 8, 10.0)
        with pytest.raises(ValueError):
            refactored_storage_overhead([1.0], [1], 8, 0.0)

    def test_headline_storage_claim(self):
        """RAPIDS headline: same-or-better availability at ~7.5x lower
        storage overhead than plain EC. With the paper's example numbers
        the RF+EC overhead must come out far below EC(m=3)'s 3/13."""
        S = 16e12
        # realistic refactored sizes: total ~ S/3, geometric ratio 4
        sizes = [S / 3 * 4**j / sum(4**i for i in range(4)) for j in range(4)]
        ovh_rfec = refactored_storage_overhead(sizes, [4, 3, 2, 1], 16, S)
        ovh_ec = ec_storage_overhead(13, 3)
        assert ovh_ec / ovh_rfec > 4.0
