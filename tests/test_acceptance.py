"""Release-acceptance test: one scenario through every major subsystem.

A campaign operator's week, end to end: persistent file-backed storage,
quorum-replicated metadata, batch ingest, integrity scrub after bit rot,
adaptive gathering after bandwidth drift, proactive staging through a
maintenance window, fragment repair after disk loss, error-controlled
and progressive restores — with the data provably intact at every step.
"""

import numpy as np
import pytest

from repro.core import RAPIDS, Archive, ProactiveOperator
from repro.core.planner import ProtectionPlanner, ProtectionRequirement
from repro.metadata import MetadataCatalog, ReplicatedKVStore
from repro.refactor import Refactorer, relative_linf_error
from repro.storage import FileStorageCluster, MaintenanceSchedule
from repro.transfer import paper_bandwidth_profile


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("acceptance")
    cluster = FileStorageCluster(
        tmp / "cluster", bandwidths=paper_bandwidth_profile(16)
    )
    rkv = ReplicatedKVStore([tmp / f"meta{i}" for i in range(3)])
    catalog = MetadataCatalog(rkv)
    rapids = RAPIDS(
        cluster, catalog, refactorer=Refactorer(4, num_planes=22), omega=0.3
    )
    archive = Archive(rapids)
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, 33)
    snapshots = {}
    for i in range(3):
        ph = rng.uniform(0, 2 * np.pi, 3)
        snapshots[f"run7:T{i:02d}"] = (
            np.sin(4 * x + ph[0])[:, None, None]
            * np.cos(3 * x + ph[1])[None, :, None]
            * np.sin(2 * x + ph[2])[None, None, :]
        ).astype(np.float32)
    reports = archive.ingest(snapshots)
    yield rapids, archive, snapshots, reports, rkv
    rkv.close()


def _exact(rapids, archive, snapshots, name):
    rec = rapids.catalog.get_object(name)
    res = rapids.restore(name, strategy="naive")
    assert res.levels_used == rec.num_levels
    err = relative_linf_error(snapshots[name], res.data)
    assert err <= rec.level_errors[-1] + 1e-12


def test_01_ingest_under_budget(world):
    rapids, archive, snapshots, reports, _ = world
    assert archive.storage_overhead() <= 0.3 + 1e-9
    for name in snapshots:
        _exact(rapids, archive, snapshots, name)


def test_02_metadata_survives_replica_loss(world):
    rapids, archive, snapshots, reports, rkv = world
    rkv.fail_replica(0)
    try:
        rec = rapids.catalog.get_object("run7:T00")
        assert rec.n_systems == 16
        _exact(rapids, archive, snapshots, "run7:T01")
    finally:
        rkv.restore_replica(0)
        rkv.recover_replica(0)


def test_03_scrub_heals_bit_rot(world):
    rapids, archive, snapshots, _, _ = world
    name = "run7:T00"
    sys5 = rapids.cluster[5]
    frag = sys5.get(name, 2, 5)
    rotten = bytearray(frag.payload)
    rotten[10] ^= 0xFF
    from repro.storage import StoredFragment

    sys5.put(StoredFragment(name, 2, 5, len(rotten), bytes(rotten)))
    report = archive.scrub()
    assert report["corrupt"] == 1 and report["repaired"] == 1
    _exact(rapids, archive, snapshots, name)


def test_04_adaptive_gathering_after_drift(world):
    rapids, archive, snapshots, _, _ = world
    # seed throughput history, then restore adaptively
    rapids.restore("run7:T01", strategy="naive")
    res = rapids.restore("run7:T01", strategy="adaptive", solver_budget=0.2)
    assert res.levels_used == 4


def test_05_staging_through_maintenance(world):
    rapids, archive, snapshots, reports, _ = world
    ms = reports["run7:T00"].ft_config
    n_down = ms[-1] + 1
    sched = MaintenanceSchedule()
    for sid in range(n_down):
        sched.add_window(sid, 50.0, 60.0)
    op = ProactiveOperator(archive, sched)
    op.stage_for_window(50.0, 60.0)
    rapids.cluster.fail(range(n_down))
    try:
        data, levels = op.restore_with_staging("run7:T00")
        assert levels == 4
        rec = rapids.catalog.get_object("run7:T00")
        assert relative_linf_error(snapshots["run7:T00"], data) <= (
            rec.level_errors[-1] + 1e-12
        )
    finally:
        rapids.cluster.restore_all()
        op.unstage()


def test_06_repair_after_disk_loss(world):
    rapids, archive, snapshots, _, _ = world
    for sid in (4, 11):
        for key in rapids.cluster[sid].fragment_keys():
            if not key[0].startswith("__staged__"):
                rapids.cluster[sid].delete(*key)
    rebuilt = archive.repair()
    assert rebuilt > 0
    health = archive.health()
    assert all(o.fragments_lost == 0 for o in health.objects)
    _exact(rapids, archive, snapshots, "run7:T02")


def test_07_error_controlled_and_progressive(world):
    rapids, archive, snapshots, reports, _ = world
    name = "run7:T01"
    rec = rapids.catalog.get_object(name)
    quick = rapids.restore(name, strategy="naive",
                           target_error=rec.level_errors[0])
    assert quick.levels_used == 1
    steps = list(rapids.restore_progressive(name))
    assert [r.levels_used for r in steps] == [1, 2, 3, 4]


def test_08_planner_consistent_with_deployment(world):
    rapids, archive, snapshots, reports, _ = world
    rec = rapids.catalog.get_object("run7:T02")
    planner = ProtectionPlanner(
        16, 0.01, [float(s) for s in rec.level_sizes],
        list(rec.level_errors),
        float(np.prod(rec.shape)) * 4,
    )
    pt = planner.recommend(ProtectionRequirement(max_expected_error=1e-4))
    assert pt.solution.expected_error <= 1e-4
