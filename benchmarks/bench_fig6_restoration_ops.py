"""Fig. 6 — per-operation time during data restoration vs CPU cores.

RF+EC's restoration phase: gathering optimisation (60 s charge),
gathering, read, EC-decode, and progressive reconstruction, extrapolated
to 32-1,024 cores.  Figure claims: reconstruction dominates at small
core counts and parallelises away as cores grow.
"""

import threading

import pytest

from harness import (
    N_SYSTEMS,
    bandwidths,
    object_profiles,
    print_table,
    scaling_model,
)
from repro.core import gathering_latency, optimized_strategy

CORE_COUNTS = [32, 64, 128, 256, 512, 1024]
SOLVER_CHARGE = 60.0

#: Gathering latency per profile, solved once.  The figure extrapolates
#: ONE restoration across core counts, so the time-budgeted solver must
#: not rerun per core count — wall-clock budgets make repeat runs
#: nondeterministic, which used to flake
#: ``test_gather_and_solver_constant``.
_GATHER_CACHE: dict[str, float] = {}
_GATHER_CACHE_LOCK = threading.Lock()


def _gather_latency(profile) -> float:
    if profile.name not in _GATHER_CACHE:
        with _GATHER_CACHE_LOCK:
            if profile.name not in _GATHER_CACHE:
                bw = bandwidths(N_SYSTEMS)
                ms = profile.optimal_ms()
                outcome = optimized_strategy(
                    profile.level_sizes, ms, bw, time_budget=0.3,
                    charged_time=0.0, seed=0, objective="makespan",
                )
                _GATHER_CACHE[profile.name] = gathering_latency(
                    outcome, profile.level_sizes, ms, bw
                )
    return _GATHER_CACHE[profile.name]


def fig6_breakdown(profile, cores: int) -> dict[str, float]:
    model = scaling_model()
    gather = _gather_latency(profile)
    gathered_bytes = profile.refactored_bytes  # k fragments per level = s_j
    return model.restoration_times(
        "RF+EC",
        cores=cores,
        original_bytes=profile.paper_bytes,
        gathered_bytes=gathered_bytes,
        gathering_latency=gather,
        gather_optimize_time=SOLVER_CHARGE,
    )


def test_reconstruct_dominates_compute_at_low_cores():
    prof = object_profiles()[0]
    ops = fig6_breakdown(prof, 64)
    compute = {k: ops[k] for k in ("read", "ec_decode", "reconstruct")}
    assert max(compute, key=compute.get) == "reconstruct"


def test_reconstruct_scales_with_cores():
    prof = object_profiles()[0]
    t = {c: fig6_breakdown(prof, c)["reconstruct"] for c in CORE_COUNTS}
    assert t[1024] < t[32] / 20
    for a, b in zip(CORE_COUNTS, CORE_COUNTS[1:]):
        assert t[b] < t[a]


def test_gather_and_solver_constant(benchmark=None):
    prof = object_profiles()[0]
    a = fig6_breakdown(prof, 32)
    b = fig6_breakdown(prof, 1024)
    assert a["gather"] == pytest.approx(b["gather"])
    assert a["gather_optimize"] == SOLVER_CHARGE


def test_bench_breakdown(benchmark):
    prof = object_profiles()[-1]
    out = benchmark(fig6_breakdown, prof, 256)
    assert out["reconstruct"] > 0


if __name__ == "__main__":
    for prof in object_profiles():
        rows = []
        for cores in CORE_COUNTS:
            ops = fig6_breakdown(prof, cores)
            rows.append(
                [cores] + [f"{ops[k]:.1f}" for k in
                           ("gather_optimize", "gather", "read", "ec_decode",
                            "reconstruct")]
            )
        print_table(
            f"Fig. 6: restoration breakdown — {prof.name} (seconds)",
            ["cores", "gath_opt", "gather", "read", "ec_dec", "reconstruct"],
            rows,
        )
