"""Fig. 2 — expected relative L-infinity error vs storage overhead.

Applies DP (2 replicas), plain EC (3 parity) and RF+EC (m = [4, 3, 2, 1],
e = [4e-3, 5e-4, 6e-5, 1e-7]) to NYX:temperature on n = 16 systems at
p = 0.01, exactly the configuration in the figure, and checks the
paper's two claims: RF+EC reaches a *better* expected error at *much*
lower storage overhead (headline: up to 7.5x less storage than EC).
"""

import pytest

from harness import N_SYSTEMS, P_FAIL, object_profiles, print_table
from repro.core import (
    duplication_storage_overhead,
    duplication_unavailability,
    ec_storage_overhead,
    ec_unavailability,
    expected_relative_error,
    refactored_storage_overhead,
)

#: The figure's stated per-level errors and FT configuration.
FIG2_ERRORS = [0.004, 0.0005, 0.00006, 0.0000001]
FIG2_MS = [4, 3, 2, 1]


def nyx_profile():
    return next(p for p in object_profiles() if p.name == "NYX:temperature")


def fig2_points():
    """(method, expected error, storage overhead) for every curve point."""
    prof = nyx_profile()
    pts = []
    for m in (2, 3):
        pts.append(
            (f"DP({m} replicas)",
             duplication_unavailability(N_SYSTEMS, m, P_FAIL),
             duplication_storage_overhead(m))
        )
    for m in (1, 2, 3, 4):
        pts.append(
            (f"EC({N_SYSTEMS - m}+{m})",
             ec_unavailability(N_SYSTEMS, m, P_FAIL),
             ec_storage_overhead(N_SYSTEMS - m, m))
        )
    rf_err = expected_relative_error(N_SYSTEMS, P_FAIL, FIG2_MS, FIG2_ERRORS)
    rf_ovh = refactored_storage_overhead(
        prof.level_sizes, FIG2_MS, N_SYSTEMS, prof.paper_bytes
    )
    pts.append(("RF+EC[4,3,2,1]", rf_err, rf_ovh))
    return pts


def test_rfec_beats_dp2_and_ec3():
    pts = {name: (err, ovh) for name, err, ovh in fig2_points()}
    rf_err, rf_ovh = pts["RF+EC[4,3,2,1]"]
    dp_err, dp_ovh = pts["DP(2 replicas)"]
    ec_err, ec_ovh = pts["EC(13+3)"]
    assert rf_err < dp_err
    assert rf_err < ec_err
    assert rf_ovh < dp_ovh
    assert rf_ovh < ec_ovh


def test_storage_reduction_factor():
    """Headline claim: up to 7.5x storage-overhead reduction vs EC at the
    same (or better) availability."""
    pts = {name: (err, ovh) for name, err, ovh in fig2_points()}
    rf_err, rf_ovh = pts["RF+EC[4,3,2,1]"]
    ec_err, ec_ovh = pts["EC(13+3)"]
    assert rf_err <= ec_err
    assert ec_ovh / rf_ovh > 3.0, f"only {ec_ovh / rf_ovh:.1f}x"


def test_rfec_error_dominated_by_availability_tail():
    """With p = 0.01 the expected error is dominated by the
    all-levels-lost tail plus the e1 band, both tiny."""
    rf_err = expected_relative_error(N_SYSTEMS, P_FAIL, FIG2_MS, FIG2_ERRORS)
    assert rf_err < 1e-5


def test_bench_expected_error_eval(benchmark):
    val = benchmark(
        expected_relative_error, N_SYSTEMS, P_FAIL, FIG2_MS, FIG2_ERRORS
    )
    assert 0 < val < 1


if __name__ == "__main__":
    rows = [
        [name, f"{err:.3e}", f"{ovh:.4f}"] for name, err, ovh in fig2_points()
    ]
    print_table(
        "Fig. 2: data quality vs storage overhead (NYX:temperature, n=16, p=0.01)",
        ["Method", "Expected rel. L-inf error", "Storage overhead"],
        rows,
    )
