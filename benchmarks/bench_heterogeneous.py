"""Extension bench — heterogeneous facility reliability.

The paper calibrates p = 0.01 from OLCF's Alpine (98.93% availability)
but also quotes ALCF's Theta Lustre at 94.8% — a 5x worse outage rate at
a facility one would plausibly include in a geo-distributed deployment.
This bench quantifies what the uniform-p assumption hides, and shows the
FT optimiser's configurations remain near-optimal when re-evaluated
under the true heterogeneous model (the bands are wide enough to absorb
facility differences at these scales).
"""

import numpy as np
import pytest

from harness import N_SYSTEMS, object_profiles, print_table
from repro.core import brute_force, heuristic
from repro.core.heterogeneous import expected_relative_error_hetero

ALPINE_P = 0.0107
THETA_P = 0.052


def fleet(theta_count: int) -> np.ndarray:
    ps = np.full(N_SYSTEMS, ALPINE_P)
    ps[:theta_count] = THETA_P
    return ps


#: The lean Fig. 2 configuration vs the budgeted optimum.
LEAN_MS = [4, 3, 2, 1]


def rows(ms=None):
    prof = object_profiles()[0]
    ms = ms if ms is not None else heuristic(prof.ft_problem(omega=0.3)).ms
    out = []
    for theta_count in (0, 4, 8, 12, 16):
        ps = fleet(theta_count)
        assumed = expected_relative_error_hetero(
            np.full(N_SYSTEMS, ALPINE_P), ms, list(prof.errors)
        )
        actual = expected_relative_error_hetero(ps, ms, list(prof.errors))
        out.append((theta_count, ms, assumed, actual))
    return out


def test_lean_configs_sensitive_to_heterogeneity():
    """The minimal Fig. 2 configuration's expected error is badly
    underestimated by the uniform-Alpine assumption once Theta-grade
    facilities join the fleet."""
    data = rows(LEAN_MS)
    assert data[0][3] == pytest.approx(data[0][2], rel=1e-12)
    half = next(r for r in data if r[0] == 8)
    assert half[3] / half[2] > 10


def test_optimised_configs_absorb_heterogeneity():
    """A finding of this extension: the budgeted optimum carries enough
    parity depth that even a half-Theta fleet stays within ~1.5x of the
    uniform prediction — the optimiser's headroom doubles as robustness
    to facility heterogeneity."""
    data = rows()
    half = next(r for r in data if r[0] == 8)
    assert half[3] / half[2] < 2.0
    for theta_count, _, assumed, actual in data[1:]:
        assert actual > assumed, theta_count


def test_optimizer_under_true_model():
    """Re-optimising with a conservative uniform p equal to the fleet's
    *worst* facility gives a configuration whose true heterogeneous
    error is within 2x of the heterogeneous-exhaustive optimum."""
    prof = object_profiles()[0]
    ps = fleet(8)
    import itertools

    best_ms, best_val = None, float("inf")
    problem = prof.ft_problem(omega=0.3)
    for combo in itertools.combinations(range(N_SYSTEMS - 1, 0, -1), 4):
        msc = list(combo)
        if problem.overhead(msc) > 0.3:
            continue
        val = expected_relative_error_hetero(ps, msc, list(prof.errors))
        if val < best_val:
            best_ms, best_val = msc, val
    conservative = heuristic(
        prof.ft_problem(omega=0.3)
    )  # solved at p = 0.01 uniform
    cons_val = expected_relative_error_hetero(
        ps, conservative.ms, list(prof.errors)
    )
    assert cons_val <= best_val * 2.0, (conservative.ms, best_ms)


def test_bench_poisson_binomial(benchmark):
    from repro.core.heterogeneous import poisson_binomial_pmf

    ps = fleet(8)
    pmf = benchmark(poisson_binomial_pmf, ps)
    assert pmf.sum() == pytest.approx(1.0)


if __name__ == "__main__":
    for label, ms in (("lean m=[4,3,2,1]", LEAN_MS), ("optimised", None)):
        table = [
            [f"{t}/16 Theta-grade", str(m), f"{assumed:.3e}",
             f"{actual:.3e}", f"{actual / assumed:.1f}x"]
            for t, m, assumed, actual in rows(ms)
        ]
        print_table(
            f"Extension: heterogeneous facilities — {label} (NYX:temperature)",
            ["fleet", "m_j", "uniform-p prediction", "true E[err]", "off by"],
            table,
        )
