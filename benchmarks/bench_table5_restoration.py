"""Table 5 — overall data-restoration performance: DP vs EC vs RF+EC.

End-to-end restoration time (gathering + read + decode + reconstruct) at
64/256/1024 cores, same fairness configs as Table 4.  Shape claims: EC
wins at 64 cores; RF+EC overtakes from 256 cores and wins clearly at
1,024, especially on the large objects.
"""

import pytest

from harness import (
    N_SYSTEMS,
    bandwidths,
    object_profiles,
    print_table,
    scaling_model,
)
from repro.core import DuplicationMethod, PlainECMethod, gathering_latency, optimized_strategy

CORES = [64, 256, 1024]
DP_REPLICAS = 3
EC_K, EC_M = 12, 4
SOLVER_CHARGE = 60.0


def table5_times():
    model = scaling_model()
    bw = bandwidths(N_SYSTEMS)
    dp = DuplicationMethod(DP_REPLICAS)
    ec = PlainECMethod(EC_K, EC_M)
    out = {}
    for prof in object_profiles():
        S = prof.paper_bytes
        ms = prof.optimal_ms()
        dp_gather = dp.restore(S, bw).gathering_latency
        ec_gather = ec.restore(S, bw).gathering_latency
        outcome = optimized_strategy(
            prof.level_sizes, ms, bw, time_budget=0.3, charged_time=0.0,
            seed=0, objective="makespan",
        )
        rf_gather = gathering_latency(outcome, prof.level_sizes, ms, bw)
        row = {"DP": sum(
            model.restoration_times("DP", cores=1, original_bytes=S,
                                    gathering_latency=dp_gather).values()
        )}
        for cores in CORES:
            row[("EC", cores)] = sum(
                model.restoration_times(
                    "EC", cores=cores, original_bytes=S, gathered_bytes=S,
                    gathering_latency=ec_gather,
                ).values()
            )
            row[("RF+EC", cores)] = sum(
                model.restoration_times(
                    "RF+EC", cores=cores, original_bytes=S,
                    gathered_bytes=prof.refactored_bytes,
                    gathering_latency=rf_gather,
                    gather_optimize_time=SOLVER_CHARGE,
                ).values()
            )
        out[prof.name] = row
    return out


def test_ec_wins_at_64_cores():
    for name, row in table5_times().items():
        assert row[("EC", 64)] < row[("RF+EC", 64)], name


def test_rfec_wins_at_1024_on_large_objects():
    for name, row in table5_times().items():
        if "hurricane" in name:
            continue
        assert row[("RF+EC", 1024)] < row[("EC", 1024)], name
        assert row[("RF+EC", 1024)] < row["DP"], name


def test_rfec_competitive_from_256_cores():
    """Paper: RF+EC starts outperforming EC at 256 cores."""
    wins = sum(
        row[("RF+EC", 256)] < row[("EC", 256)]
        for row in table5_times().values()
    )
    assert wins >= 3


def test_improvement_grows_with_scale():
    for name, row in table5_times().items():
        if "hurricane" in name:
            continue
        gain_256 = row[("EC", 256)] / row[("RF+EC", 256)]
        gain_1024 = row[("EC", 1024)] / row[("RF+EC", 1024)]
        assert gain_1024 > gain_256, name


def test_bench_table5(benchmark):
    out = benchmark(table5_times)
    assert len(out) == 6


if __name__ == "__main__":
    rows = []
    for name, r in table5_times().items():
        rows.append(
            [name, f"{r['DP']:.0f}"]
            + [f"{r[(m, c)]:.0f}" for c in CORES for m in ("EC", "RF+EC")]
        )
    print_table(
        "Table 5: overall restoration time (seconds)",
        ["Object", "DP",
         "EC@64", "RF+EC@64", "EC@256", "RF+EC@256", "EC@1024", "RF+EC@1024"],
        rows,
    )
