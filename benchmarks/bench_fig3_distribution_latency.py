"""Fig. 3 — latency of distributing data and parity fragments to the 15
remote storage systems, for all six objects under DP / EC / RF+EC.

DP ships one extra full replica to the fastest remote endpoint; EC ships
(12+4)-code fragments, one per system; RF+EC ships each refactored
level's fragments under the m = [4, 3, 2, 1] configuration of Fig. 2.
Latency is the slowest transfer under the §3.3 equal-share model,
computed at the paper's true byte sizes (2.98-16.82 TB per object).
"""

import pytest

from harness import bandwidths, object_profiles, print_table
from repro.transfer import (
    duplication_distribution,
    ec_distribution,
    phase_latency,
    refactored_distribution,
)

#: Fragments go to the 15 *remote* systems (the 16th is the local site).
N_REMOTE = 15
FIG3_MS = [4, 3, 2, 1]


def fig3_latencies():
    bw = bandwidths(N_REMOTE)
    rows = {}
    for prof in object_profiles():
        S = prof.paper_bytes
        dp = phase_latency(duplication_distribution(S, 1, bw), bw).makespan
        ec = phase_latency(ec_distribution(S, 11, 4, bw), bw).makespan
        rf = phase_latency(
            refactored_distribution(prof.level_sizes, FIG3_MS, N_REMOTE, bw), bw
        ).makespan
        rows[prof.name] = (dp, ec, rf)
    return rows


def test_method_ordering_every_object():
    """The figure's shape: DP slowest, EC in the middle, RF+EC fastest."""
    for name, (dp, ec, rf) in fig3_latencies().items():
        assert rf < ec < dp, (name, dp, ec, rf)


def test_network_overhead_reduction():
    """Headline claim: RF+EC cuts network overhead (transfer time) by up
    to ~3x vs plain EC."""
    ratios = [ec / rf for dp, ec, rf in fig3_latencies().values()]
    assert max(ratios) > 2.0, ratios


def test_larger_objects_take_longer():
    rows = fig3_latencies()
    assert rows["NYX:temperature"][1] > rows["hurricane:Pf48.bin"][1]


def test_bench_distribution_model(benchmark):
    bw = bandwidths(N_REMOTE)
    prof = object_profiles()[0]
    reqs = refactored_distribution(prof.level_sizes, FIG3_MS, N_REMOTE, bw)

    def run():
        return phase_latency(reqs, bw).makespan

    assert benchmark(run) > 0


if __name__ == "__main__":
    rows = [
        [name, f"{dp:.0f}s", f"{ec:.0f}s", f"{rf:.0f}s", f"{ec / rf:.2f}x"]
        for name, (dp, ec, rf) in fig3_latencies().items()
    ]
    print_table(
        "Fig. 3: distribution latency to 15 remote systems",
        ["Object", "DP(2 replicas)", "EC(11+4)", "RF+EC", "EC/RF+EC"],
        rows,
    )
