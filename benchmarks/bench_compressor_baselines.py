"""Compressor-baseline bench — why data *refactoring* and not just
compression?

§2.2's argument: lossless compressors barely dent floating-point
scientific data (random mantissa tails), and plain lossy compressors
give one error bound with no progressive access.  This bench puts the
refactorer against both families on the six Table 2 proxies:

* lossless zlib over the raw bytes (gzip-family, the paper's [46]);
* float16 cast (the crudest one-shot lossy baseline);
* RAPIDS refactoring at matched error targets, where the *same encoding*
  additionally yields every intermediate accuracy for free.
"""

import zlib

import numpy as np
import pytest

from harness import object_profiles, print_table
from repro.datasets import TABLE2
from repro.refactor import Refactorer, RetrievalPlan, relative_linf_error

PROXY = (49, 49, 49)


def lossless_ratio(field: np.ndarray) -> float:
    raw = field.tobytes()
    return len(raw) / len(zlib.compress(raw, level=6))


def float16_point(field: np.ndarray) -> tuple[float, float]:
    """(compression ratio, rel Linf error) of a float16 cast.

    Fields whose values exceed float16's range (absolute pressures at
    ~1e5 Pa) overflow to inf — the cast simply cannot represent them,
    which is itself part of the comparison (reported as err = inf).
    """
    with np.errstate(over="ignore"):
        cast = field.astype(np.float16)
        back = cast.astype(np.float32)
    if not np.all(np.isfinite(back)):
        return field.nbytes / cast.nbytes, float("inf")
    return field.nbytes / cast.nbytes, relative_linf_error(field, back)


def refactor_frontier(field: np.ndarray) -> RetrievalPlan:
    obj = Refactorer(4, num_planes=22).refactor(field)
    return RetrievalPlan.for_object(obj)


def test_lossless_barely_compresses():
    """Gzip-family on float32 simulation data: well under 2x (§2.2)."""
    for obj in TABLE2:
        ratio = lossless_ratio(obj.proxy(PROXY))
        assert ratio < 2.0, (obj.full_name, ratio)


def test_refactoring_beats_float16_at_its_own_error():
    """At float16's error level, the refactored representation needs
    comparable-or-fewer bytes AND remains progressive."""
    wins = 0
    for obj in TABLE2:
        field = obj.proxy(PROXY)
        _, f16_err = float16_point(field)
        plan = refactor_frontier(field)
        if not np.isfinite(f16_err):
            wins += 1  # float16 cannot represent the field at all
            continue
        try:
            budget = plan.budget_for_error(f16_err)
        except ValueError:
            continue
        f16_bytes = field.nbytes // 2
        if budget <= f16_bytes:
            wins += 1
    assert wins >= 4, wins


def test_progressive_access_is_free():
    """The refactored stream exposes >= 4 distinct accuracy points; the
    one-shot baselines expose exactly one."""
    field = TABLE2[0].proxy(PROXY)
    plan = refactor_frontier(field)
    errors = {err for _, err in plan.points}
    assert len(errors) >= 4


def test_bench_zlib_baseline(benchmark):
    field = TABLE2[0].proxy(PROXY)
    raw = field.tobytes()
    benchmark(zlib.compress, raw, 6)


def test_bench_refactor_same_input(benchmark):
    field = TABLE2[0].proxy(PROXY)
    r = Refactorer(4, num_planes=22)
    benchmark(r.refactor, field, measure_errors=False)


if __name__ == "__main__":
    rows = []
    for obj in TABLE2:
        field = obj.proxy(PROXY)
        lossless = lossless_ratio(field)
        f16_cr, f16_err = float16_point(field)
        plan = refactor_frontier(field)
        if not np.isfinite(f16_err):
            rf_cr = "(f16 overflows)"
        else:
            try:
                rf_bytes = plan.budget_for_error(f16_err)
                rf_cr = f"{field.nbytes / rf_bytes:.2f}x"
            except ValueError:
                rf_cr = "n/a"
        rows.append([
            obj.full_name, f"{lossless:.2f}x",
            f"{f16_cr:.1f}x @ {f16_err:.1e}", rf_cr,
            f"{field.nbytes / plan.total_bytes:.2f}x @ {plan.floor_error:.1e}",
        ])
    print_table(
        "Compressor baselines vs refactoring (49^3 proxies)",
        ["Object", "zlib (lossless)", "float16", "RF @ f16 err", "RF full"],
        rows,
    )
