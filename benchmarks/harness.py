"""Shared harness for the paper-reproduction benches.

Every table/figure bench needs the same ingredients:

* the §5.1.2 bandwidth profile (16 remote systems, from synthetic Globus
  logs);
* per-object *refactoring profiles*: the six Table 2 objects are
  refactored at proxy scale to measure their level-size fractions and
  reconstruction errors, then the fractions are scaled to the paper's
  full byte sizes (the availability/transfer math consumes byte counts
  only, so it runs at genuine 2.98-16.82 TB scale);
* measured single-core operation rates feeding the cluster-scaling model.

All of it is computed once per session and cached.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core import FTProblem, heuristic
from repro.datasets import TABLE2, DataObject
from repro.ec import ErasureCodec
from repro.parallel import ClusterScalingModel, OperationRates
from repro.refactor import Refactorer
from repro.transfer import paper_bandwidth_profile

#: The evaluation cluster size (§5.1.2: 16 remote GCSs).
N_SYSTEMS = 16
#: Per-system outage probability (§5.1.4, OLCF 2020 report).
P_FAIL = 0.01
#: Proxy field resolution used to measure refactoring profiles.
PROXY_SHAPE = (49, 49, 49)
#: Magnitude bitplanes kept: the quantisation floor lands at ~2e-7
#: relative, matching the paper's finest-level error of 1e-7.
NUM_PLANES = 22
#: Default storage-overhead budget for the FT optimiser benches.
OMEGA = 0.25


@dataclass(frozen=True)
class ObjectProfile:
    """Measured refactoring profile of one Table 2 object."""

    obj: DataObject
    level_fractions: tuple[float, ...]  # s_j / S measured on the proxy
    errors: tuple[float, ...]  # e_j measured on the proxy
    compression_ratio: float

    @property
    def name(self) -> str:
        return self.obj.full_name

    @property
    def paper_bytes(self) -> float:
        return self.obj.paper_bytes

    @property
    def level_sizes(self) -> list[float]:
        """Paper-scale refactored level sizes s_j in bytes."""
        return [f * self.obj.paper_bytes for f in self.level_fractions]

    @property
    def refactored_bytes(self) -> float:
        return sum(self.level_sizes)

    def ft_problem(self, *, n: int = N_SYSTEMS, omega: float = OMEGA) -> FTProblem:
        return FTProblem(
            n=n,
            p=P_FAIL,
            sizes=tuple(self.level_sizes),
            errors=self.errors,
            original_size=self.obj.paper_bytes,
            omega=omega,
        )

    def optimal_ms(self, *, n: int = N_SYSTEMS, omega: float = OMEGA) -> list[int]:
        return heuristic(self.ft_problem(n=n, omega=omega)).ms


@lru_cache(maxsize=4)
def bandwidths(n: int = N_SYSTEMS) -> np.ndarray:
    """The §5.1.2 bandwidth profile (cached, deterministic)."""
    return paper_bandwidth_profile(n)


@lru_cache(maxsize=8)
def object_profiles(shape: tuple[int, ...] = PROXY_SHAPE) -> tuple[ObjectProfile, ...]:
    """Refactor every Table 2 proxy and return the measured profiles."""
    refactorer = Refactorer(4, num_planes=NUM_PLANES)
    out = []
    for obj in TABLE2:
        field = obj.proxy(shape)
        r = refactorer.refactor(field)
        fractions = tuple(s / field.nbytes for s in r.sizes)
        out.append(
            ObjectProfile(
                obj=obj,
                level_fractions=fractions,
                errors=tuple(r.errors),
                compression_ratio=r.compression_ratio,
            )
        )
    return tuple(out)


@lru_cache(maxsize=1)
def measured_rates(n: int = 49) -> OperationRates:
    """Measure single-core throughput of the four compute operations.

    Uses an n^3 float32 proxy; rates are bytes of *original data* per
    second, which is the unit the scaling model consumes.
    """
    from repro.datasets import nyx_temperature

    field = nyx_temperature((n, n, n))
    nbytes = field.nbytes
    refactorer = Refactorer(4, num_planes=NUM_PLANES)

    t0 = time.perf_counter()
    obj = refactorer.refactor(field, measure_errors=False)
    t_refactor = time.perf_counter() - t0

    t0 = time.perf_counter()
    refactorer.reconstruct(obj)
    t_reconstruct = time.perf_counter() - t0

    codec = ErasureCodec(N_SYSTEMS)
    payload = field.tobytes()
    t0 = time.perf_counter()
    enc = codec.encode_level(payload, 4)
    t_encode = time.perf_counter() - t0

    frags = {i: f for i, f in list(enumerate(enc.fragments))[: enc.config.k]}
    t0 = time.perf_counter()
    codec.decode_level(config=enc.config, fragments=frags)
    t_decode = time.perf_counter() - t0

    return OperationRates(
        refactor=nbytes / t_refactor,
        reconstruct=nbytes / t_reconstruct,
        ec_encode=nbytes / t_encode,
        ec_decode=nbytes / t_decode,
    )


@lru_cache(maxsize=1)
def scaling_model() -> ClusterScalingModel:
    """Scaling model for the absolute Table 4/5 numbers: rates calibrated
    to the paper's implied Andes per-core throughputs (see
    ``andes_calibrated_rates``); measured local rates back the
    shape/mechanism benches."""
    from repro.parallel import andes_calibrated_rates

    return ClusterScalingModel(andes_calibrated_rates())


@lru_cache(maxsize=1)
def local_scaling_model() -> ClusterScalingModel:
    """Scaling model built from genuinely measured local rates."""
    return ClusterScalingModel(measured_rates())


def write_bench_artifact(
    name: str, payload: dict, outdir: str | Path | None = None
) -> Path:
    """Write a machine-readable bench result as ``BENCH_<name>.json``.

    The artifact lands in the repo root by default (next to the human
    reports), tagged with enough environment context to compare runs;
    CI uploads it so kernel regressions are diffable across commits.
    """
    out = Path(outdir) if outdir is not None else Path(__file__).resolve().parent.parent
    payload = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a fixed-width table like the paper's."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
