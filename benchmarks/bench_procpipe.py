"""Process-parallel streaming prepare/restore bench (repro.parallel.procpipe).

Measures the tentpole claims of the process pipeline:

* **Bit identity** — before any timing, the process-pool run is checked
  byte-for-byte against the inline serial run: FT configuration, level
  sizes, every stored fragment payload and checksum, and the restored
  array.  A perf path that changes outputs is a bug, not a speedup.
* **End-to-end speedup** — ``RAPIDS.prepare`` in process mode (>= 4
  workers) versus the threaded whole-object path on a >= 64 MiB float64
  field.  The acceptance bar is 2x; the tiled/process path wins even on
  one core because per-tile transforms stay cache-resident while the
  whole-object path streams the full field through every level.
* **Bounded peak RSS** — prepare is run in subprocesses against an
  ``.npy`` source at two dataset sizes with identical tile/in-flight
  settings; the parent's ``ru_maxrss`` must grow far slower than the
  dataset (peak memory is O(tiles in flight), not O(dataset)).
* **Pipelined archival** — the simulated EC-encode/WAN-placement overlap
  schedule must sit between its lower bound and the sequential schedule.

Usage::

    python benchmarks/bench_procpipe.py            # full acceptance run
    python benchmarks/bench_procpipe.py --smoke    # CI: reduced sizes,
                                                   # identity checks only

Results land in ``BENCH_procpipe.json`` via
:func:`harness.write_bench_artifact`.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import RAPIDS
from repro.datasets import nyx_temperature
from repro.metadata import MetadataCatalog
from repro.parallel import procpipe
from repro.refactor import Refactorer
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile

NUM_PLANES = 22
N_SYSTEMS = 16


def build_rapids(td: Path, label: str) -> RAPIDS:
    cluster = StorageCluster(paper_bandwidth_profile(N_SYSTEMS))
    catalog = MetadataCatalog(td / f"meta-{label}")
    return RAPIDS(cluster, catalog, refactorer=Refactorer(4, num_planes=NUM_PLANES))


def stored_bytes(rapids: RAPIDS, name: str, levels: int):
    """Every stored fragment's (level, system, payload, checksum)."""
    out = []
    for j in range(levels):
        for i in range(rapids.cluster.n):
            frag = rapids.cluster[i].get(name, j, i)
            out.append((j, i, frag.payload, frag.checksum))
    return out


def verify_bit_identity(data: np.ndarray, td: Path, processes: int,
                        tile_planes: int | None) -> dict:
    """Prove the pooled run is byte-identical to the inline serial run."""
    reports, restored, frags = {}, {}, {}
    for label, procs in (("serial", 1), ("pooled", processes)):
        rapids = build_rapids(td, f"ident-{label}")
        rep = rapids.prepare(
            f"ident-{label}", data, parallelism="process", processes=procs,
            tile_planes=tile_planes,
        )
        reports[label] = rep
        frags[label] = [
            (j, i, chk, len(payload))
            for j, i, payload, chk in stored_bytes(
                rapids, f"ident-{label}", len(rep.ft_config)
            )
        ]
        res = rapids.restore(f"ident-{label}")
        restored[label] = res.data
        rapids.catalog.close()

    a, b = reports["serial"], reports["pooled"]
    if a.ft_config != b.ft_config:
        raise SystemExit(f"ft_config diverged: {a.ft_config} vs {b.ft_config}")
    if a.level_sizes != b.level_sizes:
        raise SystemExit("level sizes diverged between serial and pooled runs")
    if frags["serial"] != frags["pooled"]:
        raise SystemExit("fragment payload checksums diverged")
    if not np.array_equal(restored["serial"], restored["pooled"]):
        raise SystemExit("restored arrays diverged")
    return {
        "identical": True,
        "ft_config": list(a.ft_config),
        "num_fragments": len(frags["serial"]),
        "serial_tiles": a.extra["procpipe"]["num_tiles"],
    }


def time_prepare_modes(data: np.ndarray, td: Path, processes: int,
                       tile_planes: int | None) -> dict:
    """Wall-clock ``RAPIDS.prepare``: threaded whole-object vs process."""
    out = {"nbytes": int(data.nbytes), "processes": processes}
    npy = td / "bench-input.npy"
    np.save(npy, data)

    # Default threaded path: whole-object refactor + empirical per-level
    # error measurement (the out-of-the-box prepare the process pipeline
    # replaces).  The measure_errors=False variant is recorded too so the
    # speedup attributable to bounds-based errors vs tiling is visible.
    rapids = build_rapids(td, "thread")
    t0 = time.perf_counter()
    rapids.prepare("bench-thread", data, parallelism="thread")
    out["prepare_thread_s"] = time.perf_counter() - t0
    rapids.catalog.close()

    rapids = build_rapids(td, "thread-nm")
    t0 = time.perf_counter()
    rapids.prepare("bench-thread-nm", data, parallelism="thread",
                   measure_errors=False)
    out["prepare_thread_nomeasure_s"] = time.perf_counter() - t0
    rapids.catalog.close()

    rapids = build_rapids(td, "process")
    t0 = time.perf_counter()
    rep = rapids.prepare("bench-process", str(npy), parallelism="process",
                         processes=processes, tile_planes=tile_planes)
    out["prepare_process_s"] = time.perf_counter() - t0
    out["speedup"] = out["prepare_thread_s"] / out["prepare_process_s"]
    out["procpipe"] = rep.extra["procpipe"]
    out["archival"] = rep.extra["archival"]

    t0 = time.perf_counter()
    res = rapids.restore("bench-process", parallelism="process",
                         processes=processes)
    out["restore_process_s"] = time.perf_counter() - t0
    if res.data is None or res.data.shape != data.shape:
        raise SystemExit("process-mode restore failed in-bench")
    rapids.catalog.close()
    return out


_RSS_RUNNER = """\
import json, sys
import numpy as np
from pathlib import Path
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer
from repro.storage import FileStorageCluster
from repro.transfer import paper_bandwidth_profile

npy, ws, processes, tile_planes, max_inflight = sys.argv[1:6]
ws = Path(ws)
cluster = FileStorageCluster(ws / "cluster",
                             bandwidths=paper_bandwidth_profile(16))
catalog = MetadataCatalog(ws / "meta")
rapids = RAPIDS(cluster, catalog, refactorer=Refactorer(4, num_planes=22))
if npy != "baseline":
    rep = rapids.prepare(
        "rss-probe", npy, parallelism="process",
        processes=int(processes), tile_planes=int(tile_planes),
        max_inflight=int(max_inflight),
    )
catalog.close()
# ru_maxrss is unusable here: on Linux it survives fork+exec, so a fat
# bench parent would leak its own high-water mark into every probe.
# VmHWM belongs to this process's fresh mm and resets on exec.
hwm_kib = None
with open("/proc/self/status") as f:
    for line in f:
        if line.startswith("VmHWM:"):
            hwm_kib = int(line.split()[1])
print(json.dumps({"vm_hwm_kib": hwm_kib}))
"""


def _rss_probe(npy: str, td: Path, tag: str, *, processes: int,
               tile_planes: int, max_inflight: int) -> int:
    """Peak RSS (bytes) of a prepare parent run in a fresh interpreter."""
    ws = td / f"rss-{tag}"
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_RUNNER, npy, str(ws),
         str(processes), str(tile_planes), str(max_inflight)],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(proc.stdout.splitlines()[-1])["vm_hwm_kib"] * 1024


def measure_rss_scaling(td: Path, *, planes_small: int, planes_big: int,
                        base_shape: tuple[int, int], processes: int,
                        tile_planes: int, max_inflight: int) -> dict:
    """Peak RSS at two dataset sizes with identical streaming settings.

    Both runs stream tiles of ``tile_planes`` planes with the same
    in-flight cap, so the parent's peak RSS should barely move while the
    dataset doubles — that is the O(tiles-in-flight) bound.
    """
    out = {"processes": processes, "tile_planes": tile_planes,
           "max_inflight": max_inflight}
    row = int(np.prod(base_shape)) * 8
    tile_nbytes = tile_planes * row
    out["tile_nbytes"] = tile_nbytes
    out["inflight_budget_bytes"] = max_inflight * (
        tile_nbytes + procpipe.payload_capacity(tile_nbytes)
    )
    out["baseline_rss"] = _rss_probe(
        "baseline", td, "baseline", processes=processes,
        tile_planes=tile_planes, max_inflight=max_inflight)
    for tag, planes in (("small", planes_small), ("big", planes_big)):
        shape = (planes,) + base_shape
        data = nyx_temperature(shape).astype(np.float64)
        npy = td / f"rss-{tag}.npy"
        np.save(npy, data)
        del data
        out[f"nbytes_{tag}"] = planes * row
        out[f"rss_{tag}"] = _rss_probe(
            str(npy), td, tag, processes=processes,
            tile_planes=tile_planes, max_inflight=max_inflight)
    out["rss_growth"] = out["rss_big"] - out["rss_small"]
    out["data_growth"] = out["nbytes_big"] - out["nbytes_small"]
    out["growth_ratio"] = out["rss_growth"] / out["data_growth"]
    return out


def check_archival(arch: dict) -> None:
    if not (arch["lower_bound"] - 1e-9 <= arch["completion"]
            <= arch["sequential_completion"] + 1e-9):
        raise SystemExit(
            f"archival schedule out of bounds: {arch['lower_bound']:.3f} <= "
            f"{arch['completion']:.3f} <= {arch['sequential_completion']:.3f}"
        )
    if arch["overlap_saving"] < -1e-9:
        raise SystemExit("pipelined archival slower than sequential")


def main(argv=None) -> None:
    import argparse

    from harness import print_table, write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced sizes for CI: verifies bit identity and schedule "
             "sanity, skips the speedup/RSS assertions (shared runners "
             "are too noisy to gate on)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        shape, processes = (96, 96, 64), 2
        planes_small, planes_big, base = 64, 128, (96, 64)
        tile_planes, max_inflight = 16, 2
        bench_tile_planes = 16  # ~0.75 MiB tiles: exercise the pool even at smoke size
    else:
        # 512 x 128 x 128 float64 = 64 MiB: the acceptance-bar size.
        shape, processes = (512, 128, 128), 4
        planes_small, planes_big, base = 512, 1024, (128, 128)
        tile_planes, max_inflight = 32, 4
        bench_tile_planes = None  # default ~8 MiB tiles

    data = nyx_temperature(shape).astype(np.float64)
    result = {"shape": list(shape), "nbytes": int(data.nbytes)}

    with tempfile.TemporaryDirectory() as td_:
        td = Path(td_)
        result["identity"] = verify_bit_identity(data, td, processes,
                                                 bench_tile_planes)
        print(f"bit identity: pooled ({processes} procs) == serial over "
              f"{result['identity']['num_fragments']} fragments, "
              f"{result['identity']['serial_tiles']} tiles")

        timing = time_prepare_modes(data, td, processes, bench_tile_planes)
        result["timing"] = timing
        check_archival(timing["archival"])
        del data

        rss = measure_rss_scaling(
            td, planes_small=planes_small, planes_big=planes_big,
            base_shape=base, processes=processes,
            tile_planes=tile_planes, max_inflight=max_inflight)
        result["rss"] = rss

    mib = 2**20
    print_table(
        f"procpipe prepare, {result['nbytes'] / mib:.0f} MiB float64",
        ["mode", "wall s", "speedup"],
        [
            ["threaded whole-object (default)",
             f"{timing['prepare_thread_s']:.2f}", "1.00x"],
            ["threaded, measure_errors=False",
             f"{timing['prepare_thread_nomeasure_s']:.2f}",
             f"{timing['prepare_thread_s'] / timing['prepare_thread_nomeasure_s']:.2f}x"],
            [f"process x{processes} tiled",
             f"{timing['prepare_process_s']:.2f}",
             f"{timing['speedup']:.2f}x"],
        ],
    )
    arch = timing["archival"]
    print(f"pipelined archival: completion {arch['completion']:.3f}s, "
          f"sequential {arch['sequential_completion']:.3f}s, "
          f"saving {arch['overlap_saving']:.3f}s")
    print(f"peak RSS: baseline {rss['baseline_rss'] / mib:.0f} MiB, "
          f"{rss['nbytes_small'] / mib:.0f} MiB input -> "
          f"{rss['rss_small'] / mib:.0f} MiB, "
          f"{rss['nbytes_big'] / mib:.0f} MiB input -> "
          f"{rss['rss_big'] / mib:.0f} MiB "
          f"(growth ratio {rss['growth_ratio']:.3f})")

    result["mode"] = "smoke" if args.smoke else "full"
    path = write_bench_artifact("procpipe", result)
    print(f"\nwrote {path}")

    if not args.smoke:
        if timing["speedup"] < 2.0:
            raise SystemExit(
                f"process-mode prepare speedup {timing['speedup']:.2f}x "
                "regressed below the 2x acceptance bar"
            )
        if rss["growth_ratio"] > 0.35:
            raise SystemExit(
                f"peak RSS grew {rss['growth_ratio']:.2f}x with the dataset "
                "-- the streaming pipeline is no longer bounded by "
                "tiles in flight"
            )


if __name__ == "__main__":
    main()
