"""Refactoring-pipeline benchmark: seed serial path vs overhauled kernels.

Measures the three wins of the pMGARD pipeline overhaul:

1. refactor + reconstruct throughput (chunked bitplane kernels, tiled
   transform, threaded zlib) against the seed's serial per-group loops —
   the acceptance bar is a >= 2x end-to-end speedup on a >= 64 MiB
   float64 array;
2. ``measure_errors=True`` overhead vs the number of components — the
   incremental masked-prefix path replaces the seed's from-scratch
   decode+reconstruct per prefix, so the marginal cost of each extra
   component drops below half the seed's;
3. end-to-end ``RAPIDS.prepare`` serial vs threaded+pipelined
   (``measure_errors=False`` streams component serialisation into the
   erasure coder).

The seed algorithms are reproduced inline (the ``bench_kernels.py``
``_seed_*`` pattern) and every mode verifies the new pipeline produces
byte-identical payloads, errors, and reconstructions before timing
anything.

Run as a script::

    python benchmarks/bench_refactor.py            # full: 64 MiB array
    python benchmarks/bench_refactor.py --smoke    # CI: reduced sizes

Both modes write a ``BENCH_refactor.json`` artifact via
:func:`harness.write_bench_artifact`.
"""

import struct
import time
import zlib

import numpy as np
from scipy.linalg import solve_banded

from repro.datasets import nyx_temperature
from repro.refactor import Refactorer
from repro.refactor import components as _components
from repro.refactor.bitplane import PlaneSet
from repro.refactor.error_model import relative_linf_error, theoretical_bound
from repro.refactor.grid import coarse_indices, detail_indices, plan_levels
from repro.refactor.refactorer import RefactoredObject


# -- the seed implementation, reproduced exactly ------------------------
#
# Bitplane coding: per-plane python loop over zlib'd packbits blobs.
# Transform: unbatched serial line kernels (zeros+scatter load build,
# fresh copies, one thread).  Refactorer: per-group encode loop and
# from-scratch decode+reconstruct per prefix for error measurement.


def _seed_deflate(payload: bytes) -> bytes:
    z = zlib.compress(payload, level=6)
    return b"\x01" + z if len(z) < len(payload) else b"\x00" + payload


def _seed_inflate(blob: bytes) -> bytes:
    return zlib.decompress(blob[1:]) if blob[:1] == b"\x01" else blob[1:]


def _seed_encode_planes(coeffs, num_planes=32, *, lsb_exponent=None) -> PlaneSet:
    coeffs = np.ascontiguousarray(coeffs, dtype=np.float64).reshape(-1)
    count = coeffs.size
    if count == 0:
        return PlaneSet(0, 0, 0, [])
    amax = float(np.max(np.abs(coeffs)))
    exponent = 0 if (amax == 0.0 or not np.isfinite(amax)) else int(
        np.floor(np.log2(amax))
    )
    if lsb_exponent is not None:
        num_planes = exponent - lsb_exponent + 1
        if num_planes < 1:
            return PlaneSet(count, exponent, 0, [])
    num_planes = min(num_planes, exponent + 1022)
    if num_planes < 1:
        return PlaneSet(count, exponent, 0, [])
    sign = coeffs < 0
    lsb = 2.0 ** (exponent - num_planes + 1)
    q = np.round(np.abs(coeffs) / lsb).astype(np.uint64)
    q = np.minimum(q, np.uint64(2**num_planes - 1))
    planes = []
    seen = np.zeros(count, dtype=bool)
    for i in range(num_planes):
        shift = np.uint64(num_planes - 1 - i)
        bits = ((q >> shift) & np.uint64(1)).astype(bool)
        new = bits & ~seen
        seen |= bits
        bits_blob = _seed_deflate(np.packbits(bits).tobytes())
        sign_blob = _seed_deflate(np.packbits(sign[new]).tobytes())
        planes.append(struct.pack("<I", len(bits_blob)) + bits_blob + sign_blob)
    return PlaneSet(count, exponent, num_planes, planes)


def _seed_decode_planes(ps: PlaneSet, keep=None) -> np.ndarray:
    if ps.count == 0:
        return np.zeros(0, dtype=np.float64)
    if keep is None:
        keep = len(ps.planes)
    q = np.zeros(ps.count, dtype=np.uint64)
    sign = np.zeros(ps.count, dtype=bool)
    seen = np.zeros(ps.count, dtype=bool)
    for i in range(keep):
        (blen,) = struct.unpack_from("<I", ps.planes[i], 0)
        bits_raw = _seed_inflate(ps.planes[i][4 : 4 + blen])
        sign_raw = _seed_inflate(ps.planes[i][4 + blen :])
        bits = np.unpackbits(
            np.frombuffer(bits_raw, dtype=np.uint8), count=ps.count
        ).astype(bool)
        new = bits & ~seen
        nnew = int(new.sum())
        if nnew:
            sign[new] = np.unpackbits(
                np.frombuffer(sign_raw, dtype=np.uint8), count=nnew
            ).astype(bool)
        seen |= bits
        q |= bits.astype(np.uint64) << np.uint64(ps.num_planes - 1 - i)
    out = q.astype(np.float64) * 2.0 ** (ps.exponent - ps.num_planes + 1)
    np.negative(out, where=sign, out=out)
    return out


_SEED_AXIS_CACHE: dict[int, dict] = {}


def _seed_axis_structure(n: int) -> dict:
    cached = _SEED_AXIS_CACHE.get(n)
    if cached is not None:
        return cached
    ci = coarse_indices(n)
    di = detail_indices(n)
    nc = ci.size
    spacing = np.diff(ci).astype(np.float64)
    ab = np.zeros((3, nc))
    ab[1, :-1] += spacing / 3.0
    ab[1, 1:] += spacing / 3.0
    ab[0, 1:] = spacing / 6.0
    ab[2, :-1] = spacing / 6.0
    cached = {"ci": ci, "di": di, "mass_ab": ab, "nc": nc}
    # rapidslint: disable-next=RPD110 -- seed baseline runs single-threaded
    _SEED_AXIS_CACHE[n] = cached
    return cached


def _seed_correction(detail: np.ndarray, st: dict) -> np.ndarray:
    m, nd = detail.shape
    load = np.zeros((m, st["nc"]))
    half = 0.5 * detail
    load[:, :nd] += half
    load[:, 1 : nd + 1] += half
    return solve_banded((1, 1), st["mass_ab"], load.T).T


def _seed_decompose_lines(lines, correction):
    st = _seed_axis_structure(lines.shape[1])
    coarse = lines[:, st["ci"]].copy()
    nd = st["di"].size
    detail = lines[:, st["di"]] - 0.5 * (coarse[:, :nd] + coarse[:, 1 : nd + 1])
    if correction and nd > 0:
        coarse += _seed_correction(detail, st)
    return np.concatenate([coarse, detail], axis=1)


def _seed_recompose_lines(packed, n, correction):
    st = _seed_axis_structure(n)
    nc = st["nc"]
    nd = n - nc
    coarse = packed[:, :nc].copy()
    detail = packed[:, nc:]
    if correction and nd > 0:
        coarse -= _seed_correction(detail, st)
    out = np.empty((packed.shape[0], n), dtype=packed.dtype)
    out[:, st["ci"]] = coarse
    out[:, st["di"]] = detail + 0.5 * (coarse[:, :nd] + coarse[:, 1 : nd + 1])
    return out


def _seed_apply_along_axis(fn, arr, axis):
    moved = np.moveaxis(arr, axis, -1)
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(-1, shape[-1])
    out = fn(flat).reshape(shape)
    return np.moveaxis(out, -1, axis)


def _seed_decompose(u, max_levels=6, correction=True):
    plans = plan_levels(u.shape, max_levels)
    out = u.astype(np.float64, copy=True)
    for plan in plans:
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in plan.coarsened_axes:
            block = _seed_apply_along_axis(
                lambda flat: _seed_decompose_lines(flat, correction), block, ax
            )
        out[corner] = block
    return out, plans


def _seed_recompose(mallat, plans, correction=True):
    out = np.array(mallat, dtype=np.float64, copy=True)
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in reversed(plan.coarsened_axes):
            block = _seed_apply_along_axis(
                lambda flat: _seed_recompose_lines(
                    flat, plan.fine_shape[ax], correction
                ),
                block, ax,
            )
        out[corner] = block
    return out


def _seed_level_flat_indices(plans, shape):
    flat = np.arange(int(np.prod(shape))).reshape(shape)
    groups = []
    prev_corner = plans[-1].coarse_shape
    groups.append(flat[tuple(slice(0, s) for s in prev_corner)].reshape(-1).copy())
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        region = flat[corner]
        mask = np.ones(plan.fine_shape, dtype=bool)
        mask[tuple(slice(0, s) for s in prev_corner)] = False
        groups.append(region[mask].reshape(-1).copy())
        prev_corner = plan.fine_shape
    return groups


def seed_reconstruct(obj: RefactoredObject, *, upto=None) -> np.ndarray:
    payloads = obj.payloads
    if upto is None:
        upto = len(payloads)
    parsed = [
        _components.component_from_bytes(p)[1] for p in payloads[:upto]
    ]
    planesets = _components.assemble_planesets(parsed)
    groups = _seed_level_flat_indices(obj.plans, obj.shape)
    if len(planesets) < len(groups):
        planesets += [
            PlaneSet(0, 0, 0, []) for _ in range(len(groups) - len(planesets))
        ]
    flat = np.zeros(int(np.prod(obj.shape)), dtype=np.float64)
    for idx, ps in zip(groups, planesets):
        if ps.count == 0:
            continue
        flat[idx] = _seed_decode_planes(ps, keep=len(ps.planes))
    out = _seed_recompose(flat.reshape(obj.shape), obj.plans,
                          correction=obj.correction)
    return out.astype(obj.dtype, copy=False)


def seed_refactor(
    data, *, num_components=4, num_planes=32, measure_errors=True,
) -> RefactoredObject:
    data = np.asarray(data)
    data_max = float(np.max(np.abs(data)))
    mallat, plans = _seed_decompose(data)
    groups = _seed_level_flat_indices(plans, data.shape)
    flat = mallat.reshape(-1)
    coeff_max = float(np.max(np.abs(flat)))
    if coeff_max > 0 and np.isfinite(coeff_max):
        lsb_exp = int(np.floor(np.log2(coeff_max))) - num_planes + 1
    else:
        lsb_exp = None
    planesets = [
        _seed_encode_planes(flat[idx], num_planes, lsb_exponent=lsb_exp)
        for idx in groups
    ]
    comps = _components.group_planes(planesets, num_components)
    payloads = [_components.component_to_bytes(c, planesets) for c in comps]

    bounds = []
    seen_planes = [set() for _ in planesets]
    for c in comps:
        for ref, _ in c.entries:
            seen_planes[ref.group].add(ref.plane)
        kept = []
        for g, s in enumerate(seen_planes):
            k = 0
            while k < planesets[g].num_planes and k in s:
                k += 1
            kept.append(k)
        bounds.append(
            theoretical_bound(planesets, kept, data_max) if data_max > 0 else 0.0
        )

    obj = RefactoredObject(
        shape=tuple(data.shape), dtype=str(data.dtype), plans=plans,
        payloads=payloads, errors=[], bounds=bounds, data_max=data_max,
    )
    if measure_errors:
        obj.errors = [
            relative_linf_error(data, seed_reconstruct(obj, upto=j + 1))
            for j in range(len(payloads))
        ]
    else:
        obj.errors = list(bounds)
    return obj


# -- measurements -------------------------------------------------------


def _best_of(fn, reps: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def compare_seed_vs_new(
    shape=(204, 204, 204), num_planes=22, num_components=4, reps=2
) -> dict:
    """Refactor (with error measurement) + reconstruct, seed vs new.

    Verifies payloads, measured errors, bounds, and reconstructed bytes
    are identical before reporting MB/s and speedups.
    """
    data = nyx_temperature(shape).astype(np.float64)
    nbytes = data.nbytes
    ref = Refactorer(num_components, num_planes=num_planes)

    t_seed_rf, obj_seed = _best_of(
        lambda: seed_refactor(
            data, num_components=num_components, num_planes=num_planes
        ),
        reps,
    )
    t_new_rf, obj_new = _best_of(lambda: ref.refactor(data), reps)

    t_seed_rc, rec_seed = _best_of(lambda: seed_reconstruct(obj_seed), reps)
    t_new_rc, rec_new = _best_of(lambda: ref.reconstruct(obj_new), reps)

    identical = (
        obj_seed.payloads == obj_new.payloads
        and obj_seed.errors == obj_new.errors
        and obj_seed.bounds == obj_new.bounds
        and rec_seed.tobytes() == rec_new.tobytes()
    )
    return {
        "shape": list(shape),
        "nbytes": nbytes,
        "num_planes": num_planes,
        "num_components": num_components,
        "identical": identical,
        "refactor_seed_s": t_seed_rf,
        "refactor_new_s": t_new_rf,
        "refactor_seed_mbps": nbytes / t_seed_rf / 1e6,
        "refactor_new_mbps": nbytes / t_new_rf / 1e6,
        "refactor_speedup": t_seed_rf / t_new_rf,
        "reconstruct_seed_s": t_seed_rc,
        "reconstruct_new_s": t_new_rc,
        "reconstruct_seed_mbps": nbytes / t_seed_rc / 1e6,
        "reconstruct_new_mbps": nbytes / t_new_rc / 1e6,
        "reconstruct_speedup": t_seed_rc / t_new_rc,
        "total_speedup": (t_seed_rf + t_seed_rc) / (t_new_rf + t_new_rc),
    }


def measure_error_overhead(shape=(150, 150, 150), num_planes=22,
                           comps=(2, 4, 8)) -> dict:
    """Cost of ``measure_errors=True`` vs the component count ``l``.

    The seed measured each prefix by a from-scratch decode+reconstruct,
    so its overhead grows ~linearly in ``l``; the incremental path
    decodes nothing (the encoder's quantised state is masked per prefix)
    and its per-prefix inverse transform skips all-zero detail rows, so
    the overhead curve flattens.
    """
    data = nyx_temperature(shape).astype(np.float64)
    out = {"shape": list(shape), "components": list(comps)}
    for l in comps:
        ref = Refactorer(l, num_planes=num_planes)
        t_seed_off, _ = _best_of(
            lambda: seed_refactor(
                data, num_components=l, num_planes=num_planes,
                measure_errors=False,
            ), 1,
        )
        t_seed_on, _ = _best_of(
            lambda: seed_refactor(
                data, num_components=l, num_planes=num_planes,
            ), 1,
        )
        t_new_off, _ = _best_of(
            lambda: ref.refactor(data, measure_errors=False), 1
        )
        t_new_on, _ = _best_of(lambda: ref.refactor(data), 1)
        out[f"seed_overhead_l{l}_s"] = max(0.0, t_seed_on - t_seed_off)
        out[f"new_overhead_l{l}_s"] = max(0.0, t_new_on - t_new_off)
    lo, hi = comps[0], comps[-1]
    out["seed_overhead_ratio"] = (
        out[f"seed_overhead_l{hi}_s"] / max(1e-9, out[f"seed_overhead_l{lo}_s"])
    )
    out["new_overhead_ratio"] = (
        out[f"new_overhead_l{hi}_s"] / max(1e-9, out[f"new_overhead_l{lo}_s"])
    )
    # Marginal cost of one extra component: the decode elimination shows
    # up here, independent of the (also much smaller) fixed l=2 baseline
    # that makes raw hi/lo ratios misleading.
    out["seed_overhead_slope_s"] = (
        out[f"seed_overhead_l{hi}_s"] - out[f"seed_overhead_l{lo}_s"]
    ) / (hi - lo)
    out["new_overhead_slope_s"] = (
        out[f"new_overhead_l{hi}_s"] - out[f"new_overhead_l{lo}_s"]
    ) / (hi - lo)
    return out


def measure_prepare_pipeline(shape=(128, 128, 128), num_planes=22) -> dict:
    """End-to-end ``RAPIDS.prepare``: serial vs threaded+pipelined."""
    import tempfile
    from pathlib import Path

    from repro.core import RAPIDS
    from repro.metadata import MetadataCatalog
    from repro.storage import StorageCluster
    from repro.transfer import paper_bandwidth_profile

    data = nyx_temperature(shape).astype(np.float64)
    out = {"shape": list(shape), "nbytes": data.nbytes}
    with tempfile.TemporaryDirectory() as td:
        variants = {
            "serial": dict(ec_workers=1, refactor_workers=1),
            "threaded": dict(ec_workers=None, refactor_workers=None),
        }
        reports = {}
        for label, kw in variants.items():
            cluster = StorageCluster(paper_bandwidth_profile(16))
            catalog = MetadataCatalog(Path(td) / f"meta-{label}")
            rapids = RAPIDS(
                cluster, catalog,
                refactorer=Refactorer(4, num_planes=num_planes), **kw,
            )
            t0 = time.perf_counter()
            rep = rapids.prepare(f"bench-{label}", data, measure_errors=False)
            out[f"prepare_{label}_s"] = time.perf_counter() - t0
            reports[label] = rep
            catalog.close()
        assert reports["serial"].level_sizes == reports["threaded"].level_sizes
    out["prepare_speedup"] = out["prepare_serial_s"] / out["prepare_threaded_s"]
    return out


def main(argv=None) -> None:
    import argparse

    from harness import print_table, write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI: verifies seed/new equivalence, skips "
        "the speedup assertions (shared runners are too noisy to gate on)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cmp_shape, ov_shape, prep_shape = (49,) * 3, (40,) * 3, (40,) * 3
        reps = 1
    else:
        cmp_shape, ov_shape, prep_shape = (204,) * 3, (150,) * 3, (128,) * 3
        reps = 2

    result = compare_seed_vs_new(shape=cmp_shape, reps=reps)
    if not result["identical"]:
        raise SystemExit(
            "overhauled refactor pipeline diverged from the seed path"
        )
    print_table(
        f"refactor pipeline, {result['nbytes'] / 2**20:.1f} MiB float64, "
        f"l={result['num_components']}, {result['num_planes']} planes",
        ["op", "seed MB/s", "new MB/s", "speedup"],
        [
            [
                "refactor (measured errors)",
                f"{result['refactor_seed_mbps']:.1f}",
                f"{result['refactor_new_mbps']:.1f}",
                f"{result['refactor_speedup']:.2f}x",
            ],
            [
                "reconstruct",
                f"{result['reconstruct_seed_mbps']:.1f}",
                f"{result['reconstruct_new_mbps']:.1f}",
                f"{result['reconstruct_speedup']:.2f}x",
            ],
        ],
    )
    print(f"total speedup {result['total_speedup']:.2f}x")

    overhead = measure_error_overhead(shape=ov_shape)
    result["error_overhead"] = overhead
    lo, hi = overhead["components"][0], overhead["components"][-1]
    print(
        f"\nmeasure_errors overhead l={lo} -> l={hi}: "
        f"seed {overhead[f'seed_overhead_l{lo}_s']:.2f}s -> "
        f"{overhead[f'seed_overhead_l{hi}_s']:.2f}s "
        f"({overhead['seed_overhead_ratio']:.2f}x), "
        f"new {overhead[f'new_overhead_l{lo}_s']:.2f}s -> "
        f"{overhead[f'new_overhead_l{hi}_s']:.2f}s "
        f"({overhead['new_overhead_ratio']:.2f}x)"
    )
    print(
        f"marginal cost per extra component: "
        f"seed {overhead['seed_overhead_slope_s']:.3f}s, "
        f"new {overhead['new_overhead_slope_s']:.3f}s"
    )

    prep = measure_prepare_pipeline(shape=prep_shape)
    result["prepare"] = prep
    print(
        f"prepare end-to-end: serial {prep['prepare_serial_s']:.2f}s, "
        f"threaded+pipelined {prep['prepare_threaded_s']:.2f}s "
        f"({prep['prepare_speedup']:.2f}x)"
    )

    result["mode"] = "smoke" if args.smoke else "full"
    path = write_bench_artifact("refactor", result)
    print(f"\nwrote {path}")

    if not args.smoke:
        if result["total_speedup"] < 2.0:
            raise SystemExit(
                f"refactor+reconstruct speedup {result['total_speedup']:.2f}x "
                "regressed below the 2x acceptance bar"
            )
        if overhead["new_overhead_slope_s"] > 0.5 * overhead["seed_overhead_slope_s"]:
            raise SystemExit(
                "incremental error measurement regressed: marginal cost "
                f"per component {overhead['new_overhead_slope_s']:.3f}s vs "
                f"seed {overhead['seed_overhead_slope_s']:.3f}s (bar: 0.5x)"
            )


if __name__ == "__main__":
    main()
