"""Fig. 4 — latency of gathering fragments with different strategies.

For every object (paper-scale sizes, Table 3 optimal FT configurations,
16 remote systems): Random (50 seeds, mean +/- std), Naive (fastest
systems first), and Optimized (ACO with the Naive warm start).  As in
the paper, the Optimized strategy's latency *includes* the solver's
60-second budget; we run the solver for a short real budget and charge
the nominal 60 s (its solutions converge in well under a second at this
problem size).
"""

import numpy as np
import pytest

from harness import N_SYSTEMS, bandwidths, object_profiles, print_table
from repro.core import (
    gathering_latency,
    naive_strategy,
    optimized_strategy,
    random_strategy,
)

#: The paper charges MIDACO's full budget to the gathering latency.
CHARGED_SOLVER_TIME = 60.0
RANDOM_SEEDS = 50


def fig4_latencies(charge_solver: bool = True):
    bw = bandwidths(N_SYSTEMS)
    out = {}
    for prof in object_profiles():
        sizes = prof.level_sizes
        ms = prof.optimal_ms()
        rand = [
            gathering_latency(
                random_strategy(sizes, ms, bw, seed=s), sizes, ms, bw
            )
            for s in range(RANDOM_SEEDS)
        ]
        naive = gathering_latency(naive_strategy(sizes, ms, bw), sizes, ms, bw)
        opt = optimized_strategy(
            sizes, ms, bw,
            time_budget=0.5,
            charged_time=CHARGED_SOLVER_TIME if charge_solver else 0.0,
            seed=0,
            objective="makespan",
        )
        out[prof.name] = {
            "random_mean": float(np.mean(rand)),
            "random_std": float(np.std(rand)),
            "naive": naive,
            "optimized": gathering_latency(opt, sizes, ms, bw),
        }
    return out


def test_optimized_beats_naive_and_random_on_large_objects():
    """The Fig. 4 shape for the big objects (where the 60 s solver charge
    is amortised): Optimized < Naive < mean(Random)."""
    for name, row in fig4_latencies().items():
        if "hurricane" in name:
            continue  # small objects: the 60 s charge dominates (paper §5.4)
        assert row["optimized"] < row["naive"], (name, row)
        assert row["optimized"] < row["random_mean"], (name, row)


def test_naive_beats_random_everywhere():
    for name, row in fig4_latencies().items():
        assert row["naive"] < row["random_mean"], (name, row)


def test_improvement_factors():
    """Up to 2x vs Random and 1.5x vs Naive (paper's reported gains)."""
    rows = fig4_latencies()
    best_vs_random = max(r["random_mean"] / r["optimized"] for r in rows.values())
    best_vs_naive = max(r["naive"] / r["optimized"] for r in rows.values())
    assert best_vs_random > 1.4
    assert best_vs_naive > 1.2


def test_small_objects_hurt_by_solver_charge():
    """hurricane:Pf48.bin gains little/negative (paper: the 60 s
    optimisation time eats the benefit on small objects)."""
    rows = fig4_latencies()
    hur = rows["hurricane:Pf48.bin"]
    rows_nocharge = fig4_latencies(charge_solver=False)
    # without the charge the optimiser would win even here
    assert rows_nocharge["hurricane:Pf48.bin"]["optimized"] <= hur["naive"]


def test_bench_optimized_strategy(benchmark):
    prof = object_profiles()[0]
    bw = bandwidths(N_SYSTEMS)
    ms = prof.optimal_ms()

    def run():
        return optimized_strategy(
            prof.level_sizes, ms, bw, time_budget=0.05, charged_time=0.0,
            max_iterations=30, seed=0,
        )

    out = benchmark(run)
    assert out.x.sum() > 0


if __name__ == "__main__":
    rows = []
    for name, r in fig4_latencies().items():
        rows.append([
            name,
            f"{r['random_mean']:.0f}s ± {r['random_std']:.0f}",
            f"{r['naive']:.0f}s",
            f"{r['optimized']:.0f}s",
            f"{r['random_mean'] / r['optimized']:.2f}x / {r['naive'] / r['optimized']:.2f}x",
        ])
    print_table(
        "Fig. 4: gathering latency by strategy (60 s solver budget charged)",
        ["Object", "Random(50)", "Naive", "Optimized", "gain vs Rand/Naive"],
        rows,
    )
