"""Validation bench — Monte Carlo vs the analytic availability model.

Not a paper table: an independent empirical check that every closed form
the paper's optimisation rests on (Eqs. 1, 2, 4, 5) is implemented
correctly, plus a quantified look at the i.i.d. assumption's failure
mode under correlated outages.
"""

import pytest

from harness import N_SYSTEMS, object_profiles, print_table
from repro.core import heuristic
from repro.sim import simulate_expected_error, simulate_unavailability
from repro.storage import CorrelatedFailureModel

#: Use an elevated p so the Monte Carlo sees every band with 2e5 trials.
P_MC = 0.1
TRIALS = 200_000


def validation_rows():
    rows = []
    for prof in object_profiles()[:3]:
        ms = heuristic(prof.ft_problem()).ms
        res = simulate_expected_error(
            N_SYSTEMS, P_MC, ms, list(prof.errors), trials=TRIALS, seed=17
        )
        rows.append((prof.name, ms, res))
    return rows


def test_expected_error_validates():
    for name, ms, res in validation_rows():
        assert abs(res.z_score) < 4.5, (name, res)


def test_unavailability_validates():
    for tol in (1, 2, 4):
        res = simulate_unavailability(N_SYSTEMS, P_MC, tol, trials=TRIALS, seed=5)
        assert abs(res.z_score) < 4.5, (tol, res)


def test_correlated_outages_quantified():
    corr = CorrelatedFailureModel(
        regions=[list(range(0, 8)), list(range(8, 16))],
        p_region=0.05,
        p_single=P_MC / 2,
        seed=0,
    )
    prof = object_profiles()[0]
    ms = heuristic(prof.ft_problem()).ms
    res = simulate_expected_error(
        N_SYSTEMS, P_MC, ms, list(prof.errors), trials=50_000, seed=3,
        correlated=corr,
    )
    # the i.i.d. analytic value understates the correlated-world error
    assert res.empirical > res.analytic


def test_bench_monte_carlo(benchmark):
    prof = object_profiles()[0]
    ms = heuristic(prof.ft_problem()).ms

    def run():
        return simulate_expected_error(
            N_SYSTEMS, P_MC, ms, list(prof.errors), trials=50_000, seed=1
        )

    res = benchmark(run)
    assert res.trials == 50_000


if __name__ == "__main__":
    rows = [
        [name, str(ms), f"{r.analytic:.4e}", f"{r.empirical:.4e}",
         f"{r.std_error:.1e}", f"{r.z_score:+.2f}"]
        for name, ms, r in validation_rows()
    ]
    print_table(
        f"Validation: Eq. 5 vs Monte Carlo (p={P_MC}, {TRIALS} trials)",
        ["Object", "m_j", "analytic", "empirical", "std err", "z"],
        rows,
    )
