"""Lint wall-time budget: incremental re-lint must stay under 25% of cold.

The incremental cache (``repro.analysis.cache``) is a performance
contract, not a convenience — CI runs ``rapids lint`` on every matrix
entry, and the cache is what keeps that honest.  This bench measures the
contract directly so it cannot silently regress:

1. copy the tree to a scratch dir (the repo itself is never mutated),
2. cold full-tree lint with a fresh cache (populates it),
3. append one comment line to one source file,
4. re-lint through the cache,
5. assert ``warm < BUDGET_RATIO * cold``.

Both runs are timed in-process around :func:`repro.analysis.run_lint`,
so interpreter/numpy startup (identical for both) doesn't flatten the
ratio.  Writes a JSON report (for the CI artifact) and exits non-zero
on a budget breach.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import run_lint

#: Incremental re-lint of a one-file change must finish in under this
#: fraction of the cold full-tree time.
BUDGET_RATIO = 0.25
#: Noise floor: on machines where the warm run is this fast in absolute
#: terms, the cache is plainly working regardless of the ratio.
FLOOR_SECONDS = 0.35

LINT_DIRS = ["src", "tests", "benchmarks", "examples"]
TOUCH_FILE = "src/repro/transfer/logs.py"


def _discard(*args, **kwargs) -> None:
    pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the timing report to this file")
    args = parser.parse_args(argv)

    repo = Path(__file__).resolve().parent.parent
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as tmp:
        work = Path(tmp)
        for d in LINT_DIRS:
            shutil.copytree(repo / d, work / d,
                            ignore=shutil.ignore_patterns("__pycache__"))
        cache = work / ".rapidslint-cache.json"
        dirs = [str(work / d) for d in LINT_DIRS]

        t0 = time.perf_counter()
        rc_cold = run_lint(dirs, output=_discard, cache_path=str(cache))
        cold = time.perf_counter() - t0

        touched = work / TOUCH_FILE
        with open(touched, "a", encoding="utf-8") as fh:
            fh.write("\n# bench_lint: one-line incremental change\n")

        t1 = time.perf_counter()
        rc_warm = run_lint(dirs, output=_discard, cache_path=str(cache))
        warm = time.perf_counter() - t1

    ratio = warm / cold if cold > 0 else float("inf")
    ok = (warm < BUDGET_RATIO * cold) or (warm < FLOOR_SECONDS)
    report = {
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "ratio": round(ratio, 4),
        "budget_ratio": BUDGET_RATIO,
        "floor_seconds": FLOOR_SECONDS,
        "cold_exit_code": rc_cold,
        "warm_exit_code": rc_warm,
        "within_budget": ok,
    }
    print(json.dumps(report, indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2))

    if rc_cold != 0 or rc_warm != 0:
        print("bench_lint: lint itself failed — fix findings first",
              file=sys.stderr)
        return 2
    if not ok:
        print(
            f"bench_lint: BUDGET BREACH — incremental re-lint took "
            f"{warm:.2f}s, {ratio:.0%} of the {cold:.2f}s cold run "
            f"(budget {BUDGET_RATIO:.0%})",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench_lint: incremental re-lint {warm:.2f}s = {ratio:.0%} of "
        f"cold {cold:.2f}s (budget {BUDGET_RATIO:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
