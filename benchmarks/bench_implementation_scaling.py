"""Implementation-scaling bench — cost vs data size of the core kernels.

Confirms the per-byte costs the cluster model extrapolates are *flat*:
refactoring, reconstruction and EC coding scale linearly in input bytes
(no super-linear surprises from the transform's level recursion, the
bitplane pass, or the GF matrix kernels), so per-core rates measured at
proxy scale extend to paper scale.
"""

import time

import numpy as np
import pytest

from harness import print_table
from repro.datasets import gaussian_random_field
from repro.ec import RSCode
from repro.refactor import Refactorer

SIZES = [17, 25, 33, 49, 65]


def _rate(n: int, op: str) -> float:
    """bytes/s of `op` on an n^3 proxy (best of 2)."""
    field = gaussian_random_field((n, n, n), slope=3.5, seed=0)
    r = Refactorer(4, num_planes=22)
    code = RSCode(12, 4)
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        if op == "refactor":
            r.refactor(field, measure_errors=False)
        elif op == "reconstruct":
            obj = r.refactor(field, measure_errors=False)
            t0 = time.perf_counter()
            r.reconstruct(obj)
        elif op == "ec":
            payload = field.tobytes()
            t0 = time.perf_counter()
            code.encode(payload)
        else:
            raise ValueError(op)
        best = min(best, time.perf_counter() - t0)
    return field.nbytes / best


@pytest.mark.parametrize("op", ["refactor", "reconstruct", "ec"])
def test_throughput_roughly_flat(op):
    """Per-byte cost must not blow up with size: the largest proxy's
    throughput stays within 5x of the best observed (allowing cache
    effects and fixed overheads at the small end)."""
    rates = [_rate(n, op) for n in (17, 33, 65)]
    assert max(rates) / rates[-1] < 5.0, rates


def test_larger_inputs_amortise_overheads():
    """Throughput at 65^3 beats 17^3 (fixed per-call overheads dominate
    tiny inputs)."""
    assert _rate(65, "refactor") > _rate(17, "refactor")


def test_bench_refactor_65(benchmark):
    field = gaussian_random_field((65, 65, 65), slope=3.5, seed=0)
    r = Refactorer(4, num_planes=22)
    benchmark(r.refactor, field, measure_errors=False)


if __name__ == "__main__":
    rows = []
    for n in SIZES:
        nbytes = n**3 * 4
        rows.append([
            f"{n}^3 ({nbytes / 1e6:.1f} MB)",
            f"{_rate(n, 'refactor') / 1e6:.1f}",
            f"{_rate(n, 'reconstruct') / 1e6:.1f}",
            f"{_rate(n, 'ec') / 1e6:.1f}",
        ])
    print_table(
        "Implementation scaling: throughput (MB/s) vs proxy size",
        ["proxy", "refactor", "reconstruct", "EC encode"],
        rows,
    )
