"""Table 3 — effectiveness of the heuristic FT-configuration algorithm.

For each of the six data objects, solve the fault-tolerance optimisation
with brute force and with the Algorithm 1 heuristic; the paper's claims
are (a) identical optimal configurations and (b) the heuristic is more
than 100x faster.  We use n = 16 systems with per-object overhead
budgets, measured refactoring profiles, and paper-scale sizes.
"""

import pytest

from harness import N_SYSTEMS, object_profiles, print_table
from repro.core import brute_force, heuristic

#: Per-object storage budgets (the paper does not publish its choices;
#: these are spread over a realistic range to produce diverse optima).
OMEGAS = {
    "NYX:temperature": 0.30,
    "NYX:velocity_x": 0.15,
    "SCALE:PRES": 0.40,
    "SCALE:T": 0.20,
    "hurricane:Pf48.bin": 0.60,
    "hurricane:TCf48.bin": 0.50,
}


def table3_rows():
    rows = []
    for prof in object_profiles():
        problem = prof.ft_problem(n=N_SYSTEMS, omega=OMEGAS[prof.name])
        bf = brute_force(problem)
        h = heuristic(problem)
        rows.append((prof.name, bf, h, bf.elapsed / max(h.elapsed, 1e-9)))
    return rows


def test_heuristic_matches_brute_force_all_objects():
    for name, bf, h, _ in table3_rows():
        assert h.ms == bf.ms, (name, h.ms, bf.ms)
        assert h.expected_error == pytest.approx(bf.expected_error, rel=1e-9)


def test_heuristic_speedup_over_100x():
    speedups = [s for _, _, _, s in table3_rows()]
    assert min(speedups) > 20
    assert max(speedups) > 100


def test_configs_are_valid_and_diverse():
    configs = [tuple(bf.ms) for _, bf, _, _ in table3_rows()]
    for ms in configs:
        assert all(a > b for a, b in zip(ms, ms[1:]))
        assert ms[0] < N_SYSTEMS and ms[-1] >= 1
    assert len(set(configs)) >= 3  # budgets produce distinct optima


def test_bench_brute_force(benchmark):
    problem = object_profiles()[0].ft_problem(omega=0.3)
    sol = benchmark(brute_force, problem)
    assert sol.ms


def test_bench_heuristic(benchmark):
    problem = object_profiles()[0].ft_problem(omega=0.3)
    sol = benchmark(heuristic, problem)
    assert sol.ms


if __name__ == "__main__":
    rows = [
        [name, str(bf.ms), str(h.ms), f"{speed:.0f}x",
         f"{bf.evaluations}/{h.evaluations}"]
        for name, bf, h, speed in table3_rows()
    ]
    print_table(
        "Table 3: heuristic vs brute force (n=16)",
        ["Object", "Brute-Force", "Heuristic", "Speedup", "evals BF/H"],
        rows,
    )
