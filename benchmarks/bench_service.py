"""Archive-service traffic benchmark (repro.service).

The top-level service benchmark: sustained ops/s and p50/p99 latency for
mixed-tenant traffic over ``ArchiveService``, under overload and one
injected backend outage, for at least two tenant mixes:

* **balanced** — three equal-weight tenants at a moderate arrival rate;
* **hog** — one tenant submitting 8x the traffic of another at twice
  the rate: the bulkhead/admission stress case.

Each mix runs twice in deterministic simulated time (ManualClock +
inline pump) and the two transcripts — every result, shed, metric and
injected fault — must be **byte-identical**: the replay guarantee the
chaos suite builds on.  Three invariants gate the run:

* replay divergence is a hard failure (exit 3);
* the ``hog`` mix must show zero cross-tenant starvation — the steady
  tenant keeps completing while the hog floods (exit 4);
* every result past its deadline must carry a degraded or typed status,
  never a silent success (exit 5).

A wall-clock threaded run per mix reports *sustained* ops/s against the
started worker pool (informational; shared runners are too noisy to
gate on).

Usage::

    python benchmarks/bench_service.py            # full run
    python benchmarks/bench_service.py --smoke    # CI: reduced counts

Results land in ``BENCH_service.json`` via
:func:`harness.write_bench_artifact`.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core import RAPIDS
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer
from repro.service import (
    STANDARD_MIXES,
    ArchiveService,
    ManualClock,
    ServiceConfig,
    ServiceRequest,
    drive_open_loop,
    drive_threaded,
    make_schedule,
    synthetic_field,
)
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile

N_SYSTEMS = 8
OUTAGE_SID = 1


def build_service(td: Path, label: str, *, threaded: bool = False):
    cluster = StorageCluster(paper_bandwidth_profile(N_SYSTEMS))
    catalog = MetadataCatalog(td / f"meta-{label}")
    rapids = RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.3)
    clk = ManualClock()
    cfg = ServiceConfig(
        queue_capacity=24,
        rate=10_000.0,
        burst=10_000.0,
        bulkhead_slots=2,
        workers=2,
        clock=time.monotonic if threaded else clk,
    )
    return rapids, ArchiveService(rapids, config=cfg), clk


def seed_objects(svc, seed: int) -> list[str]:
    objects = []
    for i in range(2):
        name = f"bench/base/{i}"
        t = svc.submit(ServiceRequest(
            tenant="setup", op="prepare", name=name,
            data=synthetic_field(seed + i, 4096),
        ))
        svc.pump()
        res = t.result(timeout=0)
        if res.status != "ok":
            raise SystemExit(f"setup prepare failed: {res.error}")
        objects.append(name)
    return objects


def overload_plan(seed: int) -> FaultPlan:
    """One backend down from the start, plus light service-seam faults."""
    return FaultPlan(seed=seed, specs=(
        FaultSpec(site="system.outage", effect="outage",
                  where={"system_id": OUTAGE_SID}),
        FaultSpec(site="service.admit", effect="error", probability=0.05),
        FaultSpec(site="service.journal", effect="error",
                  probability=0.1, where={"state": "done"}),
    ))


def run_mix_deterministic(
    td: Path, mix_name: str, *, requests: int, seed: int, tag: str
) -> tuple[str, dict]:
    """One seeded overload-plus-outage round in simulated time.

    Returns the canonical-JSON transcript (for the replay check) and the
    report summary.  ``pump_interval=3`` executes one request per three
    arrivals — a service at a third of the offered load, so queue
    growth, shedding and deadline pressure are all real.
    """
    mix = STANDARD_MIXES[mix_name]
    rapids, svc, clk = build_service(td, f"{mix_name}-{tag}")
    objects = seed_objects(svc, seed)

    injector = FaultInjector(overload_plan(seed))
    svc.attach_injector(injector)
    rapids.attach_injector(injector)
    injector.apply_outages(rapids.cluster)

    schedule = make_schedule(mix, objects=objects, count=requests, seed=seed)
    report = drive_open_loop(
        svc, clk, schedule, mix_name=mix.name, seed=seed,
        pump_interval=3, service_tick=0.05,
    )

    for r in report.results:
        if not r.deadline_met and r.status not in (
            "degraded", "deadline", "failed"
        ):
            raise SystemExit(
                f"result {r.request_id} blew its deadline with untyped "
                f"status {r.status!r} (exit 5)"
            )

    transcript = json.dumps({
        "summary": report.summary(),
        "results": [r.to_dict() for r in report.results],
        "sheds": report.sheds,
        "metrics": svc.snapshot(),
        "faults": [
            f"{rec.site}:{rec.effect}#{rec.occurrence}"
            for rec in injector.log
        ],
    }, sort_keys=True)
    return transcript, report.summary()


def run_mix_threaded(
    td: Path, mix_name: str, *, requests: int, seed: int
) -> dict:
    """Wall-clock sustained throughput against the started worker pool."""
    mix = STANDARD_MIXES[mix_name]
    rapids, svc, _clk = build_service(td, f"{mix_name}-wall", threaded=True)
    objects = seed_objects(svc, seed)
    schedule = make_schedule(mix, objects=objects, count=requests, seed=seed)
    svc.start()
    report = drive_threaded(
        svc, schedule, mix_name=mix.name, seed=seed, time_scale=0.05,
    )
    svc.stop()
    s = report.summary()
    return {
        "completed": s["completed"],
        "shed": s["shed"],
        "wall_ops_per_s": s["ops_per_s"],
        "wall_p50_s": s["latency_p50_s"],
        "wall_p99_s": s["latency_p99_s"],
    }


def main(argv=None) -> None:
    import argparse

    from harness import print_table, write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced request counts for CI")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    requests = 60 if args.smoke else 200
    result: dict = {"seed": args.seed, "requests_per_mix": requests,
                    "outage_system": OUTAGE_SID, "mixes": {}}

    with tempfile.TemporaryDirectory() as td_:
        td = Path(td_)
        rows = []
        for mix_name in sorted(STANDARD_MIXES):
            first, summary = run_mix_deterministic(
                td, mix_name, requests=requests, seed=args.seed, tag="a")
            again, _ = run_mix_deterministic(
                td, mix_name, requests=requests, seed=args.seed, tag="b")
            if first != again:
                raise SystemExit(
                    f"REPLAY MISMATCH: mix {mix_name!r} seed {args.seed} "
                    "produced different transcripts on identical runs "
                    "(exit 3)"
                )
            wall = run_mix_threaded(
                td, mix_name, requests=requests, seed=args.seed)
            result["mixes"][mix_name] = {
                "summary": summary,
                "replay_identical": True,
                "wall_clock": wall,
            }
            rows.append([
                mix_name,
                summary["completed"],
                summary["shed"],
                f"{summary['ops_per_s']:.1f}",
                f"{summary['latency_p50_s'] * 1e3:.1f}",
                f"{summary['latency_p99_s'] * 1e3:.1f}",
                f"{wall['wall_ops_per_s']:.1f}",
            ])

        hog = result["mixes"]["hog"]["summary"]["by_tenant"]
        if hog.get("steady", {}).get("completed", 0) == 0:
            raise SystemExit(
                "STARVATION: the steady tenant completed nothing while "
                "the hog flooded (exit 4)"
            )

    print_table(
        f"archive service, {requests} requests/mix, seed {args.seed}, "
        f"system {OUTAGE_SID} down",
        ["mix", "done", "shed", "sim ops/s", "p50 ms", "p99 ms",
         "wall ops/s"],
        rows,
    )
    hog_bt = result["mixes"]["hog"]["summary"]["by_tenant"]
    print(f"bulkhead: hog p99 {hog_bt['hog']['p99_s'] * 1e3:.1f} ms vs "
          f"steady p99 {hog_bt['steady']['p99_s'] * 1e3:.1f} ms")
    print("replay: byte-identical transcripts for every mix")

    result["mode"] = "smoke" if args.smoke else "full"
    path = write_bench_artifact("service", result)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
