"""Table 4 — overall data-preparation performance: DP vs EC vs RF+EC.

The fairness setup of §5.5.1: DP keeps 3 replicas (2 extra copies) and
plain EC uses a (12, 4) code so that both reach expected errors
comparable to RF+EC's.  Times are end-to-end preparation (all operations
plus distribution) at 64/256/1024 cores through the calibrated scaling
model.  Shape claims: EC wins at 64 cores; RF+EC overtakes it by ~2x at
1,024 cores and beats DP by ~4x.
"""

import pytest

from harness import (
    N_SYSTEMS,
    bandwidths,
    object_profiles,
    print_table,
    scaling_model,
)
from repro.core import DuplicationMethod, PlainECMethod, heuristic
from repro.transfer import phase_latency, refactored_distribution

CORES = [64, 256, 1024]
DP_REPLICAS = 3
EC_K, EC_M = 12, 4


def table4_times():
    model = scaling_model()
    bw = bandwidths(N_SYSTEMS)
    dp = DuplicationMethod(DP_REPLICAS)
    ec = PlainECMethod(EC_K, EC_M)
    out = {}
    for prof in object_profiles():
        S = prof.paper_bytes
        ms = prof.optimal_ms()
        sol = heuristic(prof.ft_problem())
        dp_dist = dp.prepare(S, bw).distribution_latency
        ec_dist = ec.prepare(S, bw).distribution_latency
        rf_dist = phase_latency(
            refactored_distribution(prof.level_sizes, ms, N_SYSTEMS, bw), bw
        ).makespan
        row = {"DP": sum(
            model.preparation_times("DP", cores=1, original_bytes=S,
                                    distribution_latency=dp_dist).values()
        )}
        for cores in CORES:
            row[("EC", cores)] = sum(
                model.preparation_times(
                    "EC", cores=cores, original_bytes=S,
                    ec_stored_bytes=S * (EC_K + EC_M) / EC_K,
                    distribution_latency=ec_dist,
                ).values()
            )
            row[("RF+EC", cores)] = sum(
                model.preparation_times(
                    "RF+EC", cores=cores, original_bytes=S,
                    refactored_bytes=prof.refactored_bytes,
                    distribution_latency=rf_dist,
                    ft_optimize_time=sol.elapsed,
                ).values()
            )
        out[prof.name] = row
    return out


def test_ec_wins_at_64_cores():
    for name, row in table4_times().items():
        assert row[("EC", 64)] < row[("RF+EC", 64)], name


def test_rfec_wins_at_1024_cores():
    for name, row in table4_times().items():
        assert row[("RF+EC", 1024)] < row[("EC", 1024)], name
        assert row[("RF+EC", 1024)] < row["DP"], name


def test_rfec_speedup_factors_at_scale():
    """~2x vs EC and ~4x vs DP at 1,024 cores (paper's reported gains)."""
    rows = table4_times()
    vs_ec = [r[("EC", 1024)] / r[("RF+EC", 1024)] for r in rows.values()]
    vs_dp = [r["DP"] / r[("RF+EC", 1024)] for r in rows.values()]
    assert max(vs_ec) > 1.5
    assert max(vs_dp) > 3.0


def test_all_methods_improve_with_cores():
    for row in table4_times().values():
        for method in ("EC", "RF+EC"):
            assert row[(method, 1024)] < row[(method, 64)]


def test_bench_table4(benchmark):
    out = benchmark(table4_times)
    assert len(out) == 6


if __name__ == "__main__":
    rows = []
    for name, r in table4_times().items():
        rows.append(
            [name, f"{r['DP']:.0f}"]
            + [f"{r[(m, c)]:.0f}" for c in CORES for m in ("EC", "RF+EC")]
        )
    print_table(
        "Table 4: overall preparation time (seconds)",
        ["Object", "DP",
         "EC@64", "RF+EC@64", "EC@256", "RF+EC@256", "EC@1024", "RF+EC@1024"],
        rows,
    )
