"""Table 2 — the evaluation dataset inventory.

Regenerates the six-object catalog with the paper's reported sizes and
benchmarks the synthetic proxy generation that stands in for reading the
real datasets.
"""

import numpy as np

from harness import object_profiles, print_table
from repro.datasets import TABLE2

TB = 1024**4


def table2_rows():
    return [
        [obj.dataset, obj.object_name, f"{obj.paper_bytes / TB:.2f}TB"]
        for obj in TABLE2
    ]


def test_table2_matches_paper():
    rows = table2_rows()
    assert len(rows) == 6
    sizes = {(r[0], r[1]): r[2] for r in rows}
    assert sizes[("NYX", "temperature")] == "16.00TB"
    assert sizes[("SCALE", "PRES")] == "16.82TB"
    assert sizes[("hurricane", "Pf48.bin")] == "2.98TB"


def test_proxies_have_refactorable_structure():
    for prof in object_profiles():
        fr = prof.level_fractions
        assert fr == tuple(sorted(fr))
        assert prof.errors == tuple(sorted(prof.errors, reverse=True))
        assert sum(fr) < 1.0  # S > sum(s_j)


def test_bench_proxy_generation(benchmark):
    obj = TABLE2[0]
    field = benchmark(obj.proxy, (33, 33, 33))
    assert field.dtype == np.float32


if __name__ == "__main__":
    print_table("Table 2: Scientific datasets", ["Dataset", "Object", "Size/object"],
                table2_rows())
    rows = [
        [p.name, "  ".join(f"{f:.4f}" for f in p.level_fractions),
         "  ".join(f"{e:.1e}" for e in p.errors), f"{p.compression_ratio:.2f}x"]
        for p in object_profiles()
    ]
    print_table("Measured refactoring profiles (proxy scale)",
                ["Object", "s_j / S", "e_j", "CR"], rows)
