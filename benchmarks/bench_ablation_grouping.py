"""Ablation — bitplane grouping policy: cross-level importance order
(pMGARD's reordering) vs naive per-decomposition-level grouping.

The paper's §2.2 argues that reordering bitplanes *across* levels by
their contribution to precision yields better progressive behaviour
than shipping decomposition levels whole.  This bench measures the
error-per-byte frontier of both policies.
"""

import pytest

from harness import print_table
from repro.datasets import scale_temperature
from repro.refactor import Refactorer


def frontier(policy: str):
    """(cumulative bytes, error) after each component prefix."""
    field = scale_temperature((49, 49, 49))
    # per-level policy maps components 1:1 onto decomposition groups;
    # match the component count to the group count for a fair frontier.
    ncomp = 4 if policy == "importance" else 4
    r = Refactorer(ncomp, num_planes=22, policy=policy)
    obj = r.refactor(field)
    acc, pts = 0, []
    for s, e in zip(obj.sizes, obj.errors):
        acc += s
        pts.append((acc, e))
    return pts


def _error_at_budget(pts, budget):
    best = 1.0
    for nbytes, err in pts:
        if nbytes <= budget:
            best = err
    return best


def test_importance_dominates_per_level_frontier():
    """At equal byte budgets, the importance ordering reaches equal or
    lower error — the pMGARD reordering claim."""
    imp = frontier("importance")
    per = frontier("per-level")
    total = imp[-1][0]
    wins = ties = 0
    for frac in (0.05, 0.15, 0.4, 1.0):
        budget = total * frac
        e_imp = _error_at_budget(imp, budget)
        e_per = _error_at_budget(per, budget)
        if e_imp < e_per:
            wins += 1
        elif e_imp == e_per:
            ties += 1
    assert wins >= 2
    assert wins + ties >= 3


def test_both_policies_converge():
    assert frontier("importance")[-1][1] < 1e-4
    assert frontier("per-level")[-1][1] < 1e-4


def test_bench_importance_grouping(benchmark):
    field = scale_temperature((33, 33, 33))
    r = Refactorer(4, num_planes=22, policy="importance")
    benchmark(r.refactor, field, measure_errors=False)


def test_bench_per_level_grouping(benchmark):
    field = scale_temperature((33, 33, 33))
    r = Refactorer(4, num_planes=22, policy="per-level")
    benchmark(r.refactor, field, measure_errors=False)


if __name__ == "__main__":
    rows = []
    for policy in ("importance", "per-level"):
        for nbytes, err in frontier(policy):
            rows.append([policy, nbytes, f"{err:.3e}"])
    print_table(
        "Ablation: grouping policy error-per-byte frontier (SCALE:T proxy)",
        ["policy", "cumulative bytes", "rel. L-inf error"],
        rows,
    )
