"""Measured local scaling — the empirical basis of the Fig. 5/6 model.

Runs the *real* block-parallel refactoring on this machine's cores
(weak scaling: fixed bytes per worker, like the paper's per-core data
objects) and measures throughput.  This grounds the cluster-scaling
extrapolation: the model assumes near-linear block-parallel scaling
(efficiency exponent 0.97), and this bench verifies that assumption
holds on real processes before it is extended to 1,024 modelled cores.
"""

import os

import numpy as np
import pytest

from harness import print_table
from repro.datasets import gaussian_random_field
from repro.parallel import ParallelRefactorer

MAX_PROCS = min(8, os.cpu_count() or 1)
#: bytes of data per worker (weak scaling), as a 3-D float32 block
BLOCK_PLANES = 16


def _weak_scaling_data(processes: int) -> np.ndarray:
    n = 33
    return gaussian_random_field(
        (BLOCK_PLANES * processes, n, n), slope=3.5, seed=1
    )


def measure(processes: int) -> float:
    """Refactoring throughput (bytes/s) with `processes` workers."""
    data = _weak_scaling_data(processes)
    pr = ParallelRefactorer(processes=processes, num_components=4, num_planes=22)
    res = pr.refactor(data)
    return res.throughput


@pytest.mark.skipif(MAX_PROCS < 2, reason="single-core machine")
def test_weak_scaling_efficiency():
    """Throughput with P workers must reach a reasonable fraction of P
    times the single-worker throughput (process startup overhead and
    shared memory bandwidth eat some of it on small blocks)."""
    t1 = measure(1)
    tp = measure(MAX_PROCS)
    efficiency = tp / (t1 * MAX_PROCS)
    assert efficiency > 0.2, f"efficiency {efficiency:.2f} at {MAX_PROCS} procs"
    assert tp > t1  # parallelism must actually help


def test_roundtrip_correct_at_scale():
    data = _weak_scaling_data(2)
    pr = ParallelRefactorer(processes=2, num_components=3, num_planes=22)
    res = pr.refactor(data)
    back = pr.reconstruct(res.objects)
    scale = float(np.abs(data).max())
    assert np.max(np.abs(back.data - data)) < 1e-4 * scale


def test_bench_parallel_refactor(benchmark):
    data = _weak_scaling_data(2)
    pr = ParallelRefactorer(processes=2, num_components=4, num_planes=22)
    res = benchmark(pr.refactor, data)
    assert res.num_blocks == 2


if __name__ == "__main__":
    rows = []
    t1 = None
    for p in (1, 2, 4, MAX_PROCS):
        if p > MAX_PROCS:
            break
        thr = measure(p)
        if t1 is None:
            t1 = thr
        rows.append([
            p, f"{thr / 1e6:.1f} MB/s", f"{thr / t1:.2f}x",
            f"{thr / (t1 * p):.2f}",
        ])
    print_table(
        "Measured weak scaling of block-parallel refactoring (local cores)",
        ["workers", "throughput", "speedup", "efficiency"],
        rows,
    )
