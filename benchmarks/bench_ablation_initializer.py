"""Ablation — the Eq. 9 initialiser of the FT-configuration heuristic.

Starting the heuristic from the maximal minimal-overhead ladder (Eq. 9)
rather than the all-ones ladder prunes every candidate with m_l < m*.
This bench measures how much work the initialiser saves and verifies it
never changes the answer.
"""

import pytest

from harness import object_profiles, print_table
from repro.core import heuristic, initial_configuration
from repro.core.ft_optimizer import FTProblem


def _problem(prof, omega=0.35):
    return prof.ft_problem(omega=omega)


def solve_both(prof, omega=0.35):
    problem = _problem(prof, omega)
    smart = heuristic(problem)
    l = problem.l
    naive_start = [l - j for j in range(l)]  # the m*=1 ladder
    naive = heuristic(problem, initial=naive_start)
    return smart, naive


def test_same_answer_with_and_without_initializer():
    for prof in object_profiles():
        smart, naive = solve_both(prof)
        assert smart.ms == naive.ms, prof.name
        assert smart.expected_error == pytest.approx(naive.expected_error)


def test_initializer_reduces_work():
    saved = []
    for prof in object_profiles():
        smart, naive = solve_both(prof)
        saved.append(naive.evaluations - smart.evaluations)
    assert sum(saved) > 0


def test_initializer_is_maximal():
    for prof in object_profiles():
        problem = _problem(prof)
        ladder = initial_configuration(problem)
        bumped = [m + 1 for m in ladder]
        if bumped[0] < problem.n:
            assert problem.overhead(bumped) > problem.omega


def test_bench_heuristic_with_initializer(benchmark):
    problem = _problem(object_profiles()[0])
    benchmark(heuristic, problem)


def test_bench_heuristic_without_initializer(benchmark):
    problem = _problem(object_profiles()[0])
    start = [problem.l - j for j in range(problem.l)]
    benchmark(lambda: heuristic(problem, initial=start))


if __name__ == "__main__":
    rows = []
    for prof in object_profiles():
        smart, naive = solve_both(prof)
        rows.append([
            prof.name, str(smart.ms),
            smart.evaluations, naive.evaluations,
            f"{naive.evaluations / smart.evaluations:.1f}x",
        ])
    print_table(
        "Ablation: Eq. 9 initialiser (omega = 0.35)",
        ["Object", "optimum", "evals (Eq.9)", "evals (m*=1)", "work saved"],
        rows,
    )
