"""Fig. 7 — refactoring/reconstruction throughput: 1 CPU core vs GPU.

Two layers (see DESIGN.md's substitution table):

1. *Measured*: the batched transform backend processes a whole stack of
   blocks per kernel call — the same restructuring a CUDA port performs.
   We measure its throughput against the one-block-at-a-time loop.
2. *Modelled*: the calibrated K80 device model converts the measured
   single-core rates into device rates using the paper's average ratios
   (3.7x refactor, 20.3x reconstruct).
"""

import time

import numpy as np
import pytest

from harness import measured_rates, print_table
from repro.datasets import TABLE2
from repro.parallel import K80_MODEL, batched_decompose, batched_recompose
from repro.refactor import transform

BLOCKS = 16
BLOCK_SHAPE = (17, 17, 17)


def _stack(obj, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack([
        obj.generator(BLOCK_SHAPE, seed=int(rng.integers(1 << 30)))
        for _ in range(BLOCKS)
    ]).astype(np.float64)


def measured_batching_speedup(obj) -> tuple[float, float]:
    """(decompose speedup, recompose speedup) of batched vs looped."""
    stack = _stack(obj)

    t0 = time.perf_counter()
    for b in range(BLOCKS):
        transform.decompose(stack[b])
    t_loop_d = time.perf_counter() - t0

    t0 = time.perf_counter()
    mallat, plans = batched_decompose(stack)
    t_batch_d = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, plans_single = transform.decompose(stack[0])
    single = [transform.decompose(stack[b])[0] for b in range(BLOCKS)]
    for b in range(BLOCKS):
        transform.recompose(single[b], plans_single)
    t_loop_r = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched_recompose(mallat, plans)
    t_batch_r = time.perf_counter() - t0
    # the loop timing above includes the decompose; remove it
    t_loop_r = max(t_loop_r - t_loop_d, t_batch_r * 0.5)
    return t_loop_d / t_batch_d, t_loop_r / t_batch_r


def modelled_gpu_throughputs() -> dict[str, tuple[float, float, float, float]]:
    """Per-object (cpu refactor, gpu refactor, cpu reconstruct, gpu
    reconstruct) throughput in bytes/s."""
    rates = measured_rates()
    out = {}
    for obj in TABLE2:
        cpu_rf = rates.refactor
        cpu_rc = rates.reconstruct
        out[obj.full_name] = (
            cpu_rf,
            K80_MODEL.device_throughput("refactor", cpu_rf),
            cpu_rc,
            K80_MODEL.device_throughput("reconstruct", cpu_rc),
        )
    return out


def test_batching_speeds_up_transform():
    """The measured mechanism: one wide batch beats a per-block loop."""
    speedup_d, _ = measured_batching_speedup(TABLE2[0])
    assert speedup_d > 1.2, speedup_d


def test_modelled_ratios_match_paper_averages():
    rows = modelled_gpu_throughputs()
    rf_ratios = [g / c for c, g, _, _ in rows.values()]
    rc_ratios = [g / c for _, _, c, g in rows.values()]
    assert np.mean(rf_ratios) == pytest.approx(3.7)
    assert np.mean(rc_ratios) == pytest.approx(20.3)


def test_reconstruction_benefits_more():
    """Fig. 7's asymmetry: the GPU helps reconstruction far more."""
    for c_rf, g_rf, c_rc, g_rc in modelled_gpu_throughputs().values():
        assert g_rc / c_rc > g_rf / c_rf


def test_bench_batched_decompose(benchmark):
    stack = _stack(TABLE2[0])
    out, _ = benchmark(batched_decompose, stack)
    assert out.shape == stack.shape


if __name__ == "__main__":
    GB = 1e9
    rows = []
    for name, (c_rf, g_rf, c_rc, g_rc) in modelled_gpu_throughputs().items():
        rows.append([
            name, f"{c_rf / GB:.3f}", f"{g_rf / GB:.3f}",
            f"{c_rc / GB:.3f}", f"{g_rc / GB:.3f}",
        ])
    print_table(
        "Fig. 7: refactor/reconstruct throughput (GB/s), 1 CPU core vs modelled K80",
        ["Object", "CPU rf", "GPU rf", "CPU rc", "GPU rc"],
        rows,
    )
    d, r = measured_batching_speedup(TABLE2[0])
    print(f"\nMeasured kernel-batching speedup (the GPU mechanism, on this "
          f"machine): decompose {d:.2f}x, recompose {r:.2f}x")
