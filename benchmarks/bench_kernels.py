"""Kernel micro-benchmarks: the hot paths identified by profiling.

Not a paper artifact — a performance-regression harness for the
vectorised kernels everything else is built on, following the
profile-first workflow of the optimisation guides: GF(256) matrix
multiply (erasure coding's inner loop), the planned/chunked EC kernels
that replaced it on the hot paths, the 1-D multilevel transform,
bitplane extraction, and the end-to-end refactor/reconstruct rates that
feed the Fig. 5/6 calibration.

Run as a script for the seed-vs-planned before/after comparison::

    python benchmarks/bench_kernels.py            # full: 64 MiB payload
    python benchmarks/bench_kernels.py --smoke    # CI: reduced sizes

Both modes verify byte-identical output and write a ``BENCH_kernels.json``
artifact via :func:`harness.write_bench_artifact`.
"""

import time

import numpy as np
import pytest

from repro.datasets import nyx_temperature
from repro.ec import RSCode, matrix, planned_matmul
from repro.ec.reed_solomon import pad_to_fragments, unpad
from repro.refactor import Refactorer, transform
from repro.refactor.bitplane import decode_planes, encode_planes

FIELD = nyx_temperature((49, 49, 49))


def _seed_encode(code: RSCode, payload: bytes) -> list:
    """The seed (pre-kernel) encode path, reproduced exactly: pad, then
    one ``matrix.matmul`` over the parity rows of the generator."""
    shards = pad_to_fragments(payload, code.k)
    parity = matrix.matmul(code.generator[code.k :], shards)
    return [shards[i] for i in range(code.k)] + [
        parity[i] for i in range(code.m)
    ]


def _seed_decode(code: RSCode, fragments: dict) -> bytes:
    """The seed decode path: per-call np.stack + invert + matmul."""
    idx = sorted(fragments)[: code.k]
    rows = np.stack(
        [np.frombuffer(memoryview(fragments[i]), dtype=np.uint8) for i in idx]
    )
    if idx == list(range(code.k)):
        shards = rows
    else:
        shards = matrix.solve(code.generator[idx], rows)
    return unpad(shards)


def _best_of(fn, reps: int = 3) -> tuple[float, object]:
    """Minimum wall time over ``reps`` runs (noise-robust) + last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def compare_seed_vs_planned(
    payload_mib: int = 64, k: int = 8, m: int = 4, reps: int = 3
) -> dict:
    """Measure seed-path vs planned-kernel encode/decode throughput.

    Returns a dict of MB/s figures and speedups; verifies the planned
    kernels produce byte-identical fragments and decodes.
    """
    rng = np.random.default_rng(0)
    payload = rng.integers(
        0, 256, size=payload_mib << 20, dtype=np.uint8
    ).tobytes()
    code = RSCode(k, m)
    nbytes = len(payload)

    t_seed_enc, seed_frags = _best_of(lambda: _seed_encode(code, payload), reps)
    t_new_enc, new_frags = _best_of(lambda: code.encode(payload), reps)
    identical_encode = len(seed_frags) == len(new_frags) and all(
        np.array_equal(a, b) for a, b in zip(seed_frags, new_frags)
    )

    # Erasure pattern forcing the matrix-solve path: drop m data fragments.
    available = {i: new_frags[i] for i in range(m, k + m)}
    t_seed_dec, seed_out = _best_of(lambda: _seed_decode(code, available), reps)
    t_new_dec, new_out = _best_of(lambda: code.decode(available), reps)
    identical_decode = seed_out == payload and new_out == payload

    return {
        "k": k,
        "m": m,
        "payload_mib": payload_mib,
        "identical_encode": bool(identical_encode),
        "identical_decode": bool(identical_decode),
        "encode_seed_mbps": nbytes / t_seed_enc / 1e6,
        "encode_planned_mbps": nbytes / t_new_enc / 1e6,
        "encode_speedup": t_seed_enc / t_new_enc,
        "decode_seed_mbps": nbytes / t_seed_dec / 1e6,
        "decode_planned_mbps": nbytes / t_new_dec / 1e6,
        "decode_speedup": t_seed_dec / t_new_dec,
    }


def test_planned_kernels_beat_seed_path():
    """Acceptance: >= 3x encode and >= 2x decode-with-erasures vs the
    seed ``matrix.matmul`` path at (k=8, m=4) over a 64 MiB payload,
    byte-identical output."""
    r = compare_seed_vs_planned(payload_mib=64, k=8, m=4)
    assert r["identical_encode"], "planned encode diverged from seed path"
    assert r["identical_decode"], "planned decode diverged from seed path"
    assert r["encode_speedup"] >= 3.0, r
    assert r["decode_speedup"] >= 2.0, r


def test_bench_gf_matmul(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, size=(16, 12), dtype=np.uint8)
    b = rng.integers(0, 256, size=(12, 1 << 16), dtype=np.uint8)
    out = benchmark(matrix.matmul, a, b)
    assert out.shape == (16, 1 << 16)


def test_bench_gf_matmul_planned(benchmark):
    """The planned/chunked kernel on the same shapes as the reference."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, size=(16, 12), dtype=np.uint8)
    b = rng.integers(0, 256, size=(12, 1 << 16), dtype=np.uint8)
    out = benchmark(planned_matmul, a, b)
    assert out.shape == (16, 1 << 16)
    assert np.array_equal(out, matrix.matmul(a, b))


def test_bench_gf_invert(benchmark):
    rng = np.random.default_rng(1)
    while True:
        m = rng.integers(0, 256, size=(12, 12), dtype=np.uint8)
        try:
            matrix.invert(m)
            break
        except np.linalg.LinAlgError:
            continue
    benchmark(matrix.invert, m)


def test_bench_rs_encode(benchmark):
    code = RSCode(12, 4)
    payload = FIELD.tobytes()
    frags = benchmark(code.encode, payload)
    assert len(frags) == 16


def test_bench_rs_decode_with_erasures(benchmark):
    """Decode with parity substitution (the matrix-solve path, not the
    all-data-present memcpy fast path)."""
    code = RSCode(12, 4)
    payload = FIELD.tobytes()
    frags = code.encode(payload)
    available = {i: frags[i] for i in list(range(2, 14)) + [15]}

    def run():
        return code.decode(available)

    assert benchmark(run) == payload


def test_bench_transform_decompose(benchmark):
    u = FIELD.astype(np.float64)
    mallat, plans = benchmark(transform.decompose, u)
    assert mallat.shape == u.shape


def test_bench_transform_recompose(benchmark):
    u = FIELD.astype(np.float64)
    mallat, plans = transform.decompose(u)
    out = benchmark(transform.recompose, mallat, plans)
    assert out.shape == u.shape


def test_bench_bitplane_encode(benchmark):
    rng = np.random.default_rng(2)
    coeffs = rng.normal(size=200_000)
    ps = benchmark(encode_planes, coeffs, 22)
    assert ps.num_planes == 22


def test_bench_bitplane_decode(benchmark):
    rng = np.random.default_rng(3)
    coeffs = rng.normal(size=200_000)
    ps = encode_planes(coeffs, 22)
    out = benchmark(decode_planes, ps)
    assert out.size == 200_000


def test_bench_refactor_end_to_end(benchmark):
    r = Refactorer(4, num_planes=22)
    obj = benchmark(r.refactor, FIELD, measure_errors=False)
    assert obj.num_components == 4


def test_bench_reconstruct_end_to_end(benchmark):
    r = Refactorer(4, num_planes=22)
    obj = r.refactor(FIELD, measure_errors=False)
    out = benchmark(r.reconstruct, obj)
    assert out.shape == FIELD.shape


def main(argv=None) -> None:
    import argparse

    from harness import print_table, write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI: verifies equivalence, skips the "
        "speedup assertions (shared runners are too noisy to gate on)",
    )
    parser.add_argument("--payload-mib", type=int, default=None)
    args = parser.parse_args(argv)

    payload_mib = args.payload_mib or (4 if args.smoke else 64)
    result = compare_seed_vs_planned(payload_mib=payload_mib, k=8, m=4)
    if not (result["identical_encode"] and result["identical_decode"]):
        raise SystemExit(f"planned kernels diverged from seed path: {result}")
    print_table(
        f"GF(256) EC kernels, (k=8, m=4), {payload_mib} MiB payload",
        ["op", "seed MB/s", "planned MB/s", "speedup"],
        [
            [
                "encode",
                f"{result['encode_seed_mbps']:.1f}",
                f"{result['encode_planned_mbps']:.1f}",
                f"{result['encode_speedup']:.2f}x",
            ],
            [
                "decode (erasures)",
                f"{result['decode_seed_mbps']:.1f}",
                f"{result['decode_planned_mbps']:.1f}",
                f"{result['decode_speedup']:.2f}x",
            ],
        ],
    )

    nbytes = FIELD.nbytes
    r = Refactorer(4, num_planes=22)
    r.refactor(FIELD, measure_errors=False)  # warm caches
    t0 = time.perf_counter()
    obj = r.refactor(FIELD, measure_errors=False)
    t_rf = time.perf_counter() - t0
    t0 = time.perf_counter()
    r.reconstruct(obj)
    t_rc = time.perf_counter() - t0
    print(f"\nrefactor    {nbytes / t_rf / 1e6:6.1f} MB/s")
    print(f"reconstruct {nbytes / t_rc / 1e6:6.1f} MB/s")

    result["refactor_mbps"] = nbytes / t_rf / 1e6
    result["reconstruct_mbps"] = nbytes / t_rc / 1e6
    result["mode"] = "smoke" if args.smoke else "full"
    path = write_bench_artifact("kernels", result)
    print(f"\nwrote {path}")

    if not args.smoke:
        if result["encode_speedup"] < 3.0 or result["decode_speedup"] < 2.0:
            raise SystemExit(
                "kernel speedup regressed below the 3x encode / 2x decode "
                f"floor: {result['encode_speedup']:.2f}x / "
                f"{result['decode_speedup']:.2f}x"
            )


if __name__ == "__main__":
    main()
