"""Kernel micro-benchmarks: the hot paths identified by profiling.

Not a paper artifact — a performance-regression harness for the
vectorised kernels everything else is built on, following the
profile-first workflow of the optimisation guides: GF(256) matrix
multiply (erasure coding's inner loop), the 1-D multilevel transform,
bitplane extraction, and the end-to-end refactor/reconstruct rates that
feed the Fig. 5/6 calibration.
"""

import numpy as np
import pytest

from repro.datasets import nyx_temperature
from repro.ec import RSCode, matrix
from repro.refactor import Refactorer, transform
from repro.refactor.bitplane import decode_planes, encode_planes

FIELD = nyx_temperature((49, 49, 49))


def test_bench_gf_matmul(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, size=(16, 12), dtype=np.uint8)
    b = rng.integers(0, 256, size=(12, 1 << 16), dtype=np.uint8)
    out = benchmark(matrix.matmul, a, b)
    assert out.shape == (16, 1 << 16)


def test_bench_gf_invert(benchmark):
    rng = np.random.default_rng(1)
    while True:
        m = rng.integers(0, 256, size=(12, 12), dtype=np.uint8)
        try:
            matrix.invert(m)
            break
        except np.linalg.LinAlgError:
            continue
    benchmark(matrix.invert, m)


def test_bench_rs_encode(benchmark):
    code = RSCode(12, 4)
    payload = FIELD.tobytes()
    frags = benchmark(code.encode, payload)
    assert len(frags) == 16


def test_bench_rs_decode_with_erasures(benchmark):
    """Decode with parity substitution (the matrix-solve path, not the
    all-data-present memcpy fast path)."""
    code = RSCode(12, 4)
    payload = FIELD.tobytes()
    frags = code.encode(payload)
    available = {i: frags[i] for i in list(range(2, 14)) + [15]}

    def run():
        return code.decode(available)

    assert benchmark(run) == payload


def test_bench_transform_decompose(benchmark):
    u = FIELD.astype(np.float64)
    mallat, plans = benchmark(transform.decompose, u)
    assert mallat.shape == u.shape


def test_bench_transform_recompose(benchmark):
    u = FIELD.astype(np.float64)
    mallat, plans = transform.decompose(u)
    out = benchmark(transform.recompose, mallat, plans)
    assert out.shape == u.shape


def test_bench_bitplane_encode(benchmark):
    rng = np.random.default_rng(2)
    coeffs = rng.normal(size=200_000)
    ps = benchmark(encode_planes, coeffs, 22)
    assert ps.num_planes == 22


def test_bench_bitplane_decode(benchmark):
    rng = np.random.default_rng(3)
    coeffs = rng.normal(size=200_000)
    ps = encode_planes(coeffs, 22)
    out = benchmark(decode_planes, ps)
    assert out.size == 200_000


def test_bench_refactor_end_to_end(benchmark):
    r = Refactorer(4, num_planes=22)
    obj = benchmark(r.refactor, FIELD, measure_errors=False)
    assert obj.num_components == 4


def test_bench_reconstruct_end_to_end(benchmark):
    r = Refactorer(4, num_planes=22)
    obj = r.refactor(FIELD, measure_errors=False)
    out = benchmark(r.reconstruct, obj)
    assert out.shape == FIELD.shape


if __name__ == "__main__":
    import time

    nbytes = FIELD.nbytes
    r = Refactorer(4, num_planes=22)
    r.refactor(FIELD, measure_errors=False)  # warm caches
    t0 = time.perf_counter()
    obj = r.refactor(FIELD, measure_errors=False)
    t_rf = time.perf_counter() - t0
    t0 = time.perf_counter()
    r.reconstruct(obj)
    t_rc = time.perf_counter() - t0
    print(f"refactor    {nbytes / t_rf / 1e6:6.1f} MB/s")
    print(f"reconstruct {nbytes / t_rc / 1e6:6.1f} MB/s")
