"""Ablation — gathering-solver components: full ACO vs pure local search
vs random restarts, and the average-time (Eq. 10) vs makespan objective.

Quantifies (a) what the pheromone machinery adds over its ingredients
and (b) how well the paper's average-transfer-time objective proxies
the makespan that end-to-end latency actually measures.
"""

import numpy as np
import pytest

from harness import N_SYSTEMS, bandwidths, object_profiles, print_table
from repro.core.gathering import _build_model
from repro.optimize import ACOSolver, GASolver


def _model(objective="average", failed=(1, 12)):
    prof = object_profiles()[0]
    model, _ = _build_model(
        prof.level_sizes, prof.optimal_ms(), bandwidths(N_SYSTEMS),
        list(failed), objective=objective,
    )
    return model


def solve_variants(model, iters=40):
    rng = np.random.default_rng(0)
    out = {}
    res = ACOSolver(seed=0).solve(model, max_iterations=iters)
    out["aco"] = res.value
    res = ACOSolver(seed=0, local_search=False).solve(
        model, max_iterations=iters
    )
    out["aco_no_ls"] = res.value
    # pure local search from the naive start
    out["local_search"] = model.evaluate(
        model.local_search(model.naive_solution(), max_rounds=50)
    )
    # genetic algorithm at a matched budget
    out["ga"] = GASolver(seed=0).solve(model, max_generations=iters).value
    # random restarts with the same evaluation budget
    best = float("inf")
    for _ in range(iters * 16):
        best = min(best, model.evaluate(model.random_solution(rng)))
    out["random_restart"] = best
    return out


def test_aco_at_least_as_good_as_ingredients():
    """ACO clearly beats random restarts and its own no-local-search
    variant; against a *long* pure local search it lands within 2%
    (local search is a very strong baseline on the average objective —
    a finding this ablation exists to surface)."""
    model = _model()
    v = solve_variants(model)
    assert v["aco"] <= v["local_search"] * 1.02
    assert v["aco"] <= v["random_restart"] + 1e-9
    assert v["aco"] <= v["aco_no_ls"] + 1e-9


def test_metaheuristics_agree():
    """ACO and GA land within a few percent of each other at matched
    budgets — evidence the floor is the problem, not the algorithm."""
    model = _model()
    v = solve_variants(model)
    assert v["ga"] <= v["aco"] * 1.05
    assert v["aco"] <= v["ga"] * 1.05


def test_average_objective_proxies_makespan():
    """Optimising Eq. 10's average still lands within 1.5x of the
    makespan-optimal selection's makespan."""
    avg_model = _model("average")
    mk_model = _model("makespan")
    x_avg = ACOSolver(seed=0).solve(avg_model, max_iterations=40).x
    x_mk = ACOSolver(seed=0).solve(mk_model, max_iterations=40).x
    mk_of_avg = mk_model.evaluate(x_avg)
    mk_best = mk_model.evaluate(x_mk)
    assert mk_of_avg <= mk_best * 1.5


def test_bench_aco(benchmark):
    model = _model()
    benchmark(lambda: ACOSolver(seed=0).solve(model, max_iterations=10))


def test_bench_local_search(benchmark):
    model = _model()
    benchmark(lambda: model.local_search(model.naive_solution(), max_rounds=20))


if __name__ == "__main__":
    for objective in ("average", "makespan"):
        model = _model(objective)
        v = solve_variants(model)
        rows = [[k, f"{val:.1f}s"] for k, val in sorted(v.items())]
        print_table(
            f"Ablation: solver variants ({objective} objective, 2 failures)",
            ["solver", "objective value"],
            rows,
        )
