"""Fig. 5 — per-operation time during data preparation vs CPU cores.

For each object, RF+EC's preparation phase is broken into read,
refactor, FT-optimisation, EC-encode, write, and distribute; compute and
I/O operations are extrapolated to 32-1,024 Andes-like cores with the
calibrated scaling model (single-core rates measured on this machine —
see DESIGN.md for the substitution).  The figure's claims: refactoring
dominates at small core counts and is embarrassingly parallel, so its
share collapses as cores grow.
"""

import pytest

from harness import (
    N_SYSTEMS,
    bandwidths,
    object_profiles,
    print_table,
    scaling_model,
)
from repro.core import heuristic
from repro.transfer import phase_latency, refactored_distribution

CORE_COUNTS = [32, 64, 128, 256, 512, 1024]


def fig5_breakdown(profile, cores: int) -> dict[str, float]:
    model = scaling_model()
    bw = bandwidths(N_SYSTEMS)
    ms = profile.optimal_ms()
    sol = heuristic(profile.ft_problem())
    dist = phase_latency(
        refactored_distribution(profile.level_sizes, ms, N_SYSTEMS, bw), bw
    ).makespan
    return model.preparation_times(
        "RF+EC",
        cores=cores,
        original_bytes=profile.paper_bytes,
        refactored_bytes=profile.refactored_bytes,
        distribution_latency=dist,
        ft_optimize_time=sol.elapsed,
    )


def test_refactor_dominates_at_low_cores():
    prof = object_profiles()[0]
    ops = fig5_breakdown(prof, 64)
    compute_and_io = {k: v for k, v in ops.items() if k != "distribute"}
    assert max(compute_and_io, key=compute_and_io.get) == "refactor"
    assert ops["refactor"] > 0.5 * sum(compute_and_io.values())


def test_refactor_scales_down_with_cores():
    prof = object_profiles()[0]
    t = {c: fig5_breakdown(prof, c)["refactor"] for c in CORE_COUNTS}
    assert t[1024] < t[32] / 20  # embarrassingly parallel
    for a, b in zip(CORE_COUNTS, CORE_COUNTS[1:]):
        assert t[b] < t[a]


def test_other_ops_also_improve():
    prof = object_profiles()[0]
    for op in ("read", "write", "ec_encode"):
        t32 = fig5_breakdown(prof, 32)[op]
        t1024 = fig5_breakdown(prof, 1024)[op]
        assert t1024 <= t32


def test_distribution_constant_across_cores():
    prof = object_profiles()[0]
    assert fig5_breakdown(prof, 32)["distribute"] == pytest.approx(
        fig5_breakdown(prof, 1024)["distribute"]
    )


def test_bench_breakdown(benchmark):
    prof = object_profiles()[0]
    out = benchmark(fig5_breakdown, prof, 256)
    assert out["refactor"] > 0


if __name__ == "__main__":
    for prof in object_profiles():
        rows = []
        for cores in CORE_COUNTS:
            ops = fig5_breakdown(prof, cores)
            rows.append(
                [cores] + [f"{ops[k]:.1f}" for k in
                           ("read", "refactor", "ft_optimize", "ec_encode",
                            "write", "distribute")]
            )
        print_table(
            f"Fig. 5: preparation breakdown — {prof.name} (seconds)",
            ["cores", "read", "refactor", "ft_opt", "ec_enc", "write", "distr"],
            rows,
        )
