"""Ablation — the bandwidth-contention model and transfer batching.

Two modelling choices behind Figs. 3/4:

1. *Static equal share* (the paper's model: every request to endpoint i
   gets B_i / c_i for its whole life) vs the exact *fair-share* event
   simulation (shares are re-divided as transfers finish).  Static is a
   per-request upper bound; this bench measures how conservative it is.
2. *Per-destination batching* of distribution transfers (one Globus task
   per endpoint) vs per-fragment requests, which self-contend.
"""

import numpy as np
import pytest

from harness import N_SYSTEMS, bandwidths, object_profiles, print_table
from repro.transfer import (
    FairShareSimulator,
    phase_latency,
    refactored_distribution,
    static_transfer_times,
)

MS = [9, 8, 7, 4]


def _requests(aggregate: bool):
    prof = object_profiles()[0]
    return refactored_distribution(
        prof.level_sizes, MS, N_SYSTEMS, bandwidths(N_SYSTEMS),
        aggregate=aggregate,
    )


def test_static_upper_bounds_fair_share():
    bw = bandwidths(N_SYSTEMS)
    reqs = _requests(aggregate=False)
    stat = static_transfer_times(reqs, bw)
    fair = FairShareSimulator(bw).run(reqs)
    for s, f in zip(stat.finish_times, fair.finish_times):
        assert f <= s + 1e-6
    assert fair.makespan <= stat.makespan + 1e-6


def test_models_agree_without_contention():
    bw = bandwidths(N_SYSTEMS)
    reqs = _requests(aggregate=True)  # one request per endpoint
    stat = phase_latency(reqs, bw, model="static")
    fair = phase_latency(reqs, bw, model="fair-share")
    np.testing.assert_allclose(stat.finish_times, fair.finish_times)


def test_batching_reduces_distribution_latency():
    """Per-fragment requests self-contend at every endpoint; bundling
    them removes that penalty entirely."""
    bw = bandwidths(N_SYSTEMS)
    bundled = phase_latency(_requests(True), bw).makespan
    separate = phase_latency(_requests(False), bw).makespan
    assert bundled < separate
    assert separate / bundled > 1.5  # 4 levels -> up to 4x static penalty


def test_static_gap_bounded():
    """The static model's conservatism stays within the contention factor."""
    bw = bandwidths(N_SYSTEMS)
    reqs = _requests(aggregate=False)
    stat = static_transfer_times(reqs, bw).makespan
    fair = FairShareSimulator(bw).run(reqs).makespan
    assert stat / fair < len(MS) + 1e-9


def test_bench_static_model(benchmark):
    bw = bandwidths(N_SYSTEMS)
    reqs = _requests(aggregate=False)
    benchmark(static_transfer_times, reqs, bw)


def test_bench_fair_share_simulation(benchmark):
    bw = bandwidths(N_SYSTEMS)
    reqs = _requests(aggregate=False)
    sim = FairShareSimulator(bw)
    benchmark(sim.run, reqs)


if __name__ == "__main__":
    bw = bandwidths(N_SYSTEMS)
    rows = []
    for agg in (True, False):
        reqs = _requests(agg)
        stat = phase_latency(reqs, bw, model="static").makespan
        fair = phase_latency(reqs, bw, model="fair-share").makespan
        rows.append([
            "bundled" if agg else "per-fragment",
            len(reqs), f"{stat:.0f}s", f"{fair:.0f}s", f"{stat / fair:.2f}x",
        ])
    print_table(
        "Ablation: contention model and batching (NYX:temperature, m=[9,8,7,4])",
        ["distribution", "#requests", "static", "fair-share", "static/fair"],
        rows,
    )
