"""Ablation — the L2 projection correction in the multilevel transform.

MGARD's defining step over a plain hierarchical-surplus (interpolation)
transform is the L2 projection of each level's detail onto the coarse
space.  This bench quantifies what it buys: reconstruction accuracy from
coarse-only prefixes, at what transform-speed cost.
"""

import numpy as np
import pytest

from harness import print_table
from repro.datasets import nyx_velocity
from repro.refactor import Refactorer


def accuracy_per_prefix(correction: bool):
    field = nyx_velocity((49, 49, 49))
    r = Refactorer(4, num_planes=22, correction=correction)
    obj = r.refactor(field)
    return obj.errors, obj.sizes


def test_correction_improves_coarse_prefixes():
    """With the correction, early-prefix (coarse) reconstructions are
    more accurate; the full reconstruction converges either way."""
    e_on, _ = accuracy_per_prefix(True)
    e_off, _ = accuracy_per_prefix(False)
    assert e_on[0] <= e_off[0] * 1.5  # never catastrophically worse
    # L2 projection minimises the L2 norm; measure it directly.
    field = nyx_velocity((49, 49, 49)).astype(np.float64)

    def coarse_l2(correction):
        r = Refactorer(4, num_planes=22, correction=correction)
        obj = r.refactor(field.astype(np.float32))
        back = r.reconstruct(obj, upto=1).astype(np.float64)
        return float(np.sqrt(np.mean((back - field) ** 2)))

    assert coarse_l2(True) < coarse_l2(False)


def test_both_modes_error_bounded():
    for corr in (True, False):
        e, _ = accuracy_per_prefix(corr)
        assert e[-1] < 1e-4
        assert e == sorted(e, reverse=True)


def test_bench_transform_with_correction(benchmark):
    field = nyx_velocity((49, 49, 49))
    r = Refactorer(4, num_planes=22, correction=True)
    benchmark(r.refactor, field, measure_errors=False)


def test_bench_transform_without_correction(benchmark):
    field = nyx_velocity((49, 49, 49))
    r = Refactorer(4, num_planes=22, correction=False)
    benchmark(r.refactor, field, measure_errors=False)


if __name__ == "__main__":
    rows = []
    for corr in (True, False):
        e, s = accuracy_per_prefix(corr)
        rows.append([
            "on" if corr else "off",
            "  ".join(f"{x:.2e}" for x in e),
            "  ".join(str(x) for x in s),
        ])
    print_table(
        "Ablation: L2 projection correction (NYX:velocity_x proxy)",
        ["correction", "errors e_j", "sizes s_j"],
        rows,
    )
