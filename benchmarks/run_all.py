"""Run every bench module's report generator and collect the output.

``python benchmarks/run_all.py [outfile]`` executes each
``bench_*.py`` as a script (its ``__main__`` block prints the
reproduced table/figure) and concatenates the reports — the quickest
way to regenerate the full EXPERIMENTS.md evidence in one command.
"""

from __future__ import annotations

import runpy
import sys
import time
from contextlib import redirect_stdout
from io import StringIO
from pathlib import Path

HERE = Path(__file__).parent
#: Report order: paper artifacts first, then validations and ablations.
ORDER = [
    "bench_table2_datasets",
    "bench_fig2_quality_vs_overhead",
    "bench_fig3_distribution_latency",
    "bench_table3_heuristic",
    "bench_fig4_gathering",
    "bench_fig5_preparation_ops",
    "bench_fig6_restoration_ops",
    "bench_table4_preparation",
    "bench_table5_restoration",
    "bench_fig7_gpu",
    "bench_validation_montecarlo",
    "bench_related_zebra",
    "bench_compressor_baselines",
    "bench_heterogeneous",
    "bench_ablation_l2",
    "bench_ablation_grouping",
    "bench_ablation_initializer",
    "bench_ablation_solvers",
    "bench_ablation_contention",
    "bench_local_scaling",
    "bench_implementation_scaling",
    "bench_kernels",
]


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(HERE))
    out_path = Path(argv[1]) if len(argv) > 1 else None
    chunks: list[str] = []
    for name in ORDER:
        path = HERE / f"{name}.py"
        if not path.exists():
            print(f"!! missing bench module {name}", file=sys.stderr)
            continue
        t0 = time.perf_counter()
        buf = StringIO()
        with redirect_stdout(buf):
            runpy.run_path(str(path), run_name="__main__")
        elapsed = time.perf_counter() - t0
        chunks.append(buf.getvalue())
        print(f"{name}: done in {elapsed:.1f}s", file=sys.stderr)
    report = "\n".join(chunks)
    if out_path is not None:
        out_path.write_text(report)
        print(f"wrote {out_path}", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
