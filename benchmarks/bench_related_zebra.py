"""Related-work bench — RAPIDS vs demand-aware tiering (Zebra-like, §6).

The paper argues that demand-aware schemes (CoREC, Zebra) need access
predictions that are hard to make and drift over time, and that they
ignore the data's information content.  This bench quantifies both
points on an archive of equal-size objects at a shared overhead budget:

* *oracle demand*: tiering concentrates parity on hot objects and
  achieves a low demand-weighted error — the regime those systems are
  designed for;
* *drifted demand* (the access ranking inverts): the same assignment's
  weighted error collapses, while RAPIDS's per-level protection — which
  never consulted demand — delivers the same expected error to every
  request before and after the drift.
"""

import pytest

from harness import N_SYSTEMS, P_FAIL, object_profiles, print_table
from repro.core import expected_relative_error, heuristic
from repro.core.related import DemandAwareTiering

OMEGA = 0.25
DEMANDS = [64.0, 16.0, 4.0, 2.0, 1.0, 1.0]  # hot -> cold
#: Equal-size objects isolate the demand effect for the tiering scheme
#: (with heterogeneous sizes the budget, not the demand, dictates who
#: can afford parity — the drift experiment needs the classic setting).
EQUAL_SIZE = 8 * 1024**4


def rapids_weighted_error(demands) -> float:
    """Demand-weighted expected error of per-object RAPIDS protection.

    Every object gets its own Eq. 5-optimal configuration at the shared
    budget; the result is demand-independent by construction, so the
    weighting is a formality."""
    profiles = object_profiles()
    errors = []
    for prof in profiles:
        sol = heuristic(prof.ft_problem(omega=OMEGA))
        errors.append(sol.expected_error)
    total = sum(demands)
    return sum(d * e for d, e in zip(demands, errors)) / total


def zebra_assignment():
    sizes = [EQUAL_SIZE] * len(DEMANDS)
    return DemandAwareTiering(N_SYSTEMS, P_FAIL).assign(sizes, DEMANDS, OMEGA)


def test_budgets_match():
    ta = zebra_assignment()
    assert ta.storage_overhead() <= OMEGA + 1e-9


def test_drift_hurts_tiering_not_rapids():
    ta = zebra_assignment()
    zebra_oracle = ta.weighted_expected_error(P_FAIL)
    zebra_drift = ta.weighted_expected_error(P_FAIL, demands=DEMANDS[::-1])
    # drift degrades the tiering baseline materially...
    assert zebra_drift > zebra_oracle * 2
    # ...while every RAPIDS object keeps its exact protection: the
    # per-object expected errors never consulted demand, so each request
    # sees the same quality before and after the drift, and the weighted
    # average stays below the tiering baseline in both regimes.
    assert rapids_weighted_error(DEMANDS) < zebra_oracle
    assert rapids_weighted_error(DEMANDS[::-1]) < zebra_drift


def test_rapids_beats_tiering_even_with_oracle_demand():
    """Because RAPIDS also exploits the information content (levels), it
    reaches a lower weighted error than all-or-nothing tiering at the
    same budget even when tiering's demand estimates are perfect."""
    ta = zebra_assignment()
    assert rapids_weighted_error(DEMANDS) < ta.weighted_expected_error(P_FAIL)


def test_hot_objects_protected_more():
    ta = zebra_assignment()
    assert ta.ms[0] >= ta.ms[-1]
    assert ta.ms[0] > min(ta.ms)


def test_bench_tier_assignment(benchmark):
    sizes = [EQUAL_SIZE] * len(DEMANDS)
    scheme = DemandAwareTiering(N_SYSTEMS, P_FAIL)
    ta = benchmark(scheme.assign, sizes, DEMANDS, OMEGA)
    assert len(ta.ms) == 6


if __name__ == "__main__":
    ta = zebra_assignment()
    rows = [
        ["Zebra-like (oracle demand)", str(list(ta.ms)),
         f"{ta.weighted_expected_error(P_FAIL):.3e}"],
        ["Zebra-like (drifted demand)", str(list(ta.ms)),
         f"{ta.weighted_expected_error(P_FAIL, demands=DEMANDS[::-1]):.3e}"],
        ["RAPIDS (any demand)", "per-level",
         f"{rapids_weighted_error(DEMANDS):.3e}"],
    ]
    print_table(
        f"Related work: demand-aware tiering vs RAPIDS (omega = {OMEGA})",
        ["Scheme", "parity", "demand-weighted E[err]"],
        rows,
    )
